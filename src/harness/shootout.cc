#include "harness/shootout.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "harness/table.hh"

namespace slip
{

ShootoutRow
shootoutRow(const std::string &backend, const CampaignTally &tally)
{
    ShootoutRow row;
    row.backend = backend;
    row.trials = tally.trials;
    row.faultsInjected = tally.faultsInjected;
    row.faultsDetected = tally.faultsDetected;
    row.silentCorrupt = tally.outcomes(TrialOutcome::SilentCorrupt);
    row.detectedUnrepaired =
        tally.outcomes(TrialOutcome::DetectedUnrepaired);
    row.latencyAvg = tally.avgLatency();
    row.latencyMax = tally.latencyMax;
    row.overheadCycles = tally.detectOverhead;
    row.cyclesTotal = tally.cyclesTotal;
    return row;
}

std::string
renderShootoutTable(const std::vector<ShootoutRow> &rows)
{
    Table table({"backend", "trials", "injected", "detected",
                 "coverage", "silent-corrupt", "det-unrepaired",
                 "lat-avg", "lat-max", "overhead-cycles", "overhead"});
    for (const ShootoutRow &r : rows) {
        table.addRow({r.backend, Table::count(r.trials),
                      Table::count(r.faultsInjected),
                      Table::count(r.faultsDetected),
                      Table::percent(r.coverage()),
                      Table::count(r.silentCorrupt),
                      Table::count(r.detectedUnrepaired),
                      Table::fixed(r.latencyAvg, 1),
                      Table::count(r.latencyMax),
                      Table::count(r.overheadCycles),
                      Table::percent(r.overheadFraction())});
    }
    std::ostringstream out;
    table.print(out);
    return out.str();
}

void
writeShootoutTable(const std::vector<ShootoutRow> &rows,
                   const std::string &path)
{
    try {
        const std::filesystem::path dir =
            std::filesystem::path(path).parent_path();
        if (!dir.empty())
            std::filesystem::create_directories(dir);
        const std::string tmp = path + ".tmp";
        {
            std::ofstream out(tmp, std::ios::trunc);
            if (!out) {
                SLIP_WARN("cannot open shootout table temp file '", tmp,
                          "' for writing; table not written");
                return;
            }
            out << renderShootoutTable(rows);
            out.flush();
            if (!out) {
                SLIP_WARN("write to shootout table temp file '", tmp,
                          "' failed; table not written");
                std::remove(tmp.c_str());
                return;
            }
        }
        std::filesystem::rename(tmp, path);
    } catch (const std::exception &e) {
        SLIP_WARN("failed to write shootout table '", path,
                  "': ", e.what());
    }
}

namespace
{

/** "key": <number> within `chunk`; false when absent. */
bool
findNumber(const std::string &chunk, const char *key, double &out)
{
    const std::string needle = std::string("\"") + key + "\":";
    const size_t at = chunk.find(needle);
    if (at == std::string::npos)
        return false;
    const char *p = chunk.c_str() + at + needle.size();
    char *end = nullptr;
    out = std::strtod(p, &end);
    return end != p;
}

uint64_t
findU64(const std::string &chunk, const char *key)
{
    double v = 0.0;
    findNumber(chunk, key, v);
    return v < 0 ? 0 : uint64_t(v);
}

/** "key": "value" within `chunk`; empty when absent. */
std::string
findString(const std::string &chunk, const char *key)
{
    const std::string needle = std::string("\"") + key + "\": \"";
    const size_t at = chunk.find(needle);
    if (at == std::string::npos)
        return "";
    const size_t from = at + needle.size();
    const size_t end = chunk.find('"', from);
    return end == std::string::npos ? ""
                                    : chunk.substr(from, end - from);
}

} // namespace

std::vector<ShootoutRow>
shootoutRowsFromReport(const std::string &jsonText)
{
    std::vector<ShootoutRow> rows;
    const std::string marker = "\"campaign\": \"";
    size_t pos = jsonText.find(marker);
    while (pos != std::string::npos) {
        const size_t next = jsonText.find(marker, pos + marker.size());
        std::string chunk = jsonText.substr(
            pos, (next == std::string::npos ? jsonText.size() : next) -
                     pos);
        pos = next;
        // Only the campaign-level tally: the per-workload breakdown
        // repeats every key with per-workload values.
        const size_t cut = chunk.find("\"workloads\"");
        if (cut != std::string::npos)
            chunk.resize(cut);
        const std::string backend = findString(chunk, "detect_backend");
        if (backend.empty())
            continue; // pre-backend report object
        ShootoutRow row;
        row.backend = backend;
        row.trials = findU64(chunk, "trials");
        row.faultsInjected = findU64(chunk, "injected");
        row.faultsDetected = findU64(chunk, "detected");
        row.silentCorrupt = findU64(chunk, "silent_corrupt");
        row.detectedUnrepaired = findU64(chunk, "detected_unrepaired");
        findNumber(chunk, "avg", row.latencyAvg);
        row.latencyMax = findU64(chunk, "max");
        row.overheadCycles = findU64(chunk, "overhead_cycles");
        row.cyclesTotal = findU64(chunk, "cycles_total");
        rows.push_back(std::move(row));
    }
    return rows;
}

bool
validateShootoutReport(const std::string &jsonText, std::string &err)
{
    size_t begin = 0;
    size_t end = jsonText.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(jsonText[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(jsonText[end - 1])))
        --end;
    if (begin == end) {
        err = "report is empty";
        return false;
    }
    if (jsonText[begin] != '[') {
        err = "report does not start with a JSON array (foreign or "
              "corrupt file)";
        return false;
    }
    if (jsonText[end - 1] != ']') {
        err = "report is truncated (no closing ']' — writer died "
              "mid-file?)";
        return false;
    }
    // Every campaign object must be this schema revision. Objects
    // written before "report_version" existed have no field and pass
    // as legacy.
    size_t pos = 0;
    const std::string needle = "\"report_version\":";
    while ((pos = jsonText.find(needle, pos)) != std::string::npos) {
        const char *p = jsonText.c_str() + pos + needle.size();
        char *numEnd = nullptr;
        const unsigned long v = std::strtoul(p, &numEnd, 10);
        if (numEnd == p || v != kFaultReportVersion) {
            err = "report schema version " +
                  (numEnd == p ? std::string("<garbage>")
                               : std::to_string(v)) +
                  " does not match this build's version " +
                  std::to_string(kFaultReportVersion) +
                  " (regenerate the report)";
            return false;
        }
        pos += needle.size();
    }
    return true;
}

} // namespace slip
