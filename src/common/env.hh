/**
 * @file
 * Validated environment-knob parsing. Every SLIPSTREAM_* knob follows
 * one contract (the one SLIPSTREAM_JOBS established): an unset
 * variable means the built-in default, a well-formed value wins, and
 * garbage earns a warning naming the variable and falls back to the
 * default — it never aborts a run. An empty or whitespace-only value
 * (`SLIPSTREAM_DETECT= cmd`) counts as *unset*, not as garbage: that
 * is how shells and supervisors clear a knob. Values are re-read on
 * every call so tests can override per-run.
 */

#ifndef SLIPSTREAM_COMMON_ENV_HH
#define SLIPSTREAM_COMMON_ENV_HH

#include <cstddef>
#include <cstdint>
#include <initializer_list>

namespace slip
{

/**
 * $name parsed as a non-negative integer. Garbage (non-numeric,
 * negative, trailing junk, overflow) warns and returns `fallback`.
 */
uint64_t envU64(const char *name, uint64_t fallback);

/**
 * $name parsed as a boolean: 1/true/yes/on and 0/false/no/off
 * (case-insensitive). Anything else warns and returns `fallback`.
 */
bool envFlag(const char *name, bool fallback);

/**
 * $name matched (case-sensitively) against a closed set of mode
 * names. Unset, empty, or whitespace-only returns `fallback`; a
 * listed value returns its index in `choices`.
 *
 * Unlike the numeric knobs above, mode knobs get the STRICT contract:
 * an unrecognized value throws FatalError naming the variable and
 * listing every valid choice. A typo'd mode would silently run the
 * wrong experiment for hours — failing fast is the only safe
 * fallback ($SLIPSTREAM_DETECT, $SLIPSTREAM_ISOLATION and
 * $SLIPSTREAM_DISPATCH all parse through this).
 */
size_t envChoice(const char *name,
                 std::initializer_list<const char *> choices,
                 size_t fallback);

} // namespace slip

#endif // SLIPSTREAM_COMMON_ENV_HH
