/**
 * @file
 * Fundamental scalar types shared by every module in the slipstream
 * simulator. Mirrors the conventions of classic architecture simulators:
 * addresses and data words are 64-bit, cycles and dynamic sequence
 * numbers are monotonically increasing 64-bit counters.
 */

#ifndef SLIPSTREAM_COMMON_TYPES_HH
#define SLIPSTREAM_COMMON_TYPES_HH

#include <cstdint>

namespace slip
{

/** Byte address in the simulated flat address space. */
using Addr = uint64_t;

/** Architectural data word (registers are 64 bits wide). */
using Word = uint64_t;

/** Signed view of an architectural word, for arithmetic semantics. */
using SWord = int64_t;

/** Architectural register index. The SSIR ISA has 64 registers. */
using RegIndex = uint8_t;

/** Simulated clock cycle count. */
using Cycle = uint64_t;

/** Global dynamic-instruction sequence number (program order). */
using InstSeqNum = uint64_t;

/** Number of architectural registers in the SSIR ISA. */
constexpr unsigned kNumRegs = 64;

/** Register 0 is hardwired to zero, as in MIPS. */
constexpr RegIndex kZeroReg = 0;

/** An invalid/absent register operand. */
constexpr RegIndex kNoReg = 0xff;

/** Instructions are fixed-width 32-bit words. */
constexpr unsigned kInstBytes = 4;

} // namespace slip

#endif // SLIPSTREAM_COMMON_TYPES_HH
