/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**) used by
 * workload input generation, the fault injector, and property-based
 * tests. Self-contained so simulation results are reproducible across
 * platforms and standard-library versions (std::mt19937 streams are
 * portable, but distributions are not).
 */

#ifndef SLIPSTREAM_COMMON_RANDOM_HH
#define SLIPSTREAM_COMMON_RANDOM_HH

#include <cstdint>

namespace slip
{

/** Deterministic 64-bit PRNG with convenience draw helpers. */
class Rng
{
  public:
    /** Seed the generator; equal seeds yield identical streams. */
    explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedull);

    /**
     * Seed one of many independent streams. Parallel consumers (fuzz
     * jobs, per-trial generators) must NOT derive sub-seeds
     * additively — Rng(seed + job) makes (seed, job) and
     * (seed + k, job - k) the *same* generator. This constructor
     * derives the splitmix expansion increment from the stream id
     * (splitmix-style stream derivation), so distinct (seed, stream)
     * pairs yield unrelated sequences even when seed + stream
     * collides. Rng(s, 0) is a distinct stream from Rng(s).
     */
    Rng(uint64_t seed, uint64_t stream);

    /** Next raw 64-bit draw. */
    uint64_t next();

    /** Uniform value in [0, bound). bound must be nonzero. */
    uint64_t below(uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** Bernoulli draw: true with probability p (clamped to [0,1]). */
    bool chance(double p);

    /** Uniform double in [0, 1). */
    double real();

  private:
    uint64_t s[4];
};

} // namespace slip

#endif // SLIPSTREAM_COMMON_RANDOM_HH
