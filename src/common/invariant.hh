/**
 * @file
 * Runtime invariant checkers for the simulation hot loops.
 *
 * These are heavier than SLIP_ASSERT (some walk whole structures —
 * e.g. re-summing delay-buffer occupancy), so they follow the
 * SLIP_TRACE two-level gating model exactly:
 *
 *  - Compile time: defining SLIPSTREAM_DISABLE_INVARIANTS (the CMake
 *    option of the same name; release builds that want provably zero
 *    overhead set it, and CI's overhead guard builds that flavor)
 *    compiles every SLIP_INVARIANT site out entirely.
 *  - Run time: in normal builds each site costs one predictable
 *    branch on a process-global flag, off by default. The fuzzer and
 *    targeted tests enable it (invariants::setEnabled, or the
 *    SLIPSTREAM_INVARIANTS env knob read at first use).
 *
 * A violated invariant throws InvariantViolation — catchable, so the
 * differential fuzzer can turn a violation into a minimized repro
 * bundle instead of taking the whole process down. The supervised
 * trial runner classifies it like any internal error.
 */

#ifndef SLIPSTREAM_COMMON_INVARIANT_HH
#define SLIPSTREAM_COMMON_INVARIANT_HH

#include <stdexcept>
#include <string>

#include "common/logging.hh"

namespace slip
{

/** A runtime invariant check failed (model state is inconsistent). */
class InvariantViolation : public std::logic_error
{
  public:
    explicit InvariantViolation(const std::string &msg)
        : std::logic_error(msg)
    {}
};

namespace invariants
{

/** Process-global toggle. Reads $SLIPSTREAM_INVARIANTS at first use. */
bool enabled();

/** Turn checking on/off (the fuzzer enables it per run). */
void setEnabled(bool on);

/** RAII enable/restore for test scopes. */
class Scope
{
  public:
    explicit Scope(bool on)
        : prev(enabled())
    {
        setEnabled(on);
    }
    ~Scope() { setEnabled(prev); }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    bool prev;
};

[[noreturn]] void violationImpl(const char *file, int line,
                                const std::string &msg);

} // namespace invariants
} // namespace slip

// ---------------------------------------------------------------------
// Check macros. SLIP_INVARIANT* are the only spellings the hot loops
// use, so a build with SLIPSTREAM_DISABLE_INVARIANTS compiles every
// checker out entirely (mirroring SLIP_TRACE).
// ---------------------------------------------------------------------

#ifdef SLIPSTREAM_DISABLE_INVARIANTS

#define SLIP_INVARIANTS_ACTIVE() false
#define SLIP_INVARIANT(cond, ...) ((void)0)

#else

/** Are runtime invariant checks live? (One global load + branch.) */
#define SLIP_INVARIANTS_ACTIVE() (::slip::invariants::enabled())

/**
 * Check `cond` when invariants are enabled; throws InvariantViolation
 * (with file:line and the formatted message) when it fails.
 */
#define SLIP_INVARIANT(cond, ...) \
    do { \
        if (::slip::invariants::enabled() && !(cond)) { \
            ::slip::invariants::violationImpl( \
                __FILE__, __LINE__, \
                ::slip::detail::concat("invariant failed: " #cond \
                                       " — ", \
                                       ##__VA_ARGS__)); \
        } \
    } while (0)

#endif // SLIPSTREAM_DISABLE_INVARIANTS

#endif // SLIPSTREAM_COMMON_INVARIANT_HH
