/**
 * @file
 * Async-signal-safe crash reporting for sandboxed trial workers.
 *
 * A worker process that takes SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT
 * cannot run normal reporting code — the heap, iostreams, and most of
 * libc are off-limits inside a signal handler. What it *can* do is
 * write(2) a small fixed-size record to a pipe the supervisor holds
 * the read end of (the classic self-pipe trick), then re-raise the
 * signal with default disposition so the kernel's exit status still
 * tells the truth.
 *
 * The record carries the signal number, the faulting address (when
 * the kernel provides one), and the trial id + phase the worker
 * last announced via setCrashContext() — so the supervisor can say
 * "trial 17 died on SIGSEGV at 0xdeadbeef while in phase `run`"
 * even though the worker's own stack is gone.
 *
 * Everything the handler touches is a lock-free atomic or a stack
 * buffer; the handler performs exactly one write(2) and re-raises.
 */

#ifndef SLIPSTREAM_COMMON_CRASH_REPORT_HH
#define SLIPSTREAM_COMMON_CRASH_REPORT_HH

#include <atomic>
#include <cstdint>

namespace slip
{

/**
 * Where a worker was in its trial lifecycle, kept in a shared-memory
 * progress word (heartbeat) and stamped into crash notes. The values
 * are wire-stable: they cross process boundaries.
 */
enum class TrialPhase : uint8_t
{
    Idle,     // between trials
    Receive,  // reading a job request off the pipe
    Setup,    // pre-run preparation (program lookup, injector arming)
    Run,      // inside the simulation proper
    Report,   // serializing / shipping the result back
};

inline constexpr unsigned kNumTrialPhases = 5;

/** "idle", "receive", "setup", "run", "report". */
const char *trialPhaseName(TrialPhase phase);

/**
 * The fixed-size record the signal handler writes. POD, no pointers,
 * byte-copied through a pipe — both ends are the same binary (fork,
 * no exec), so no portability concerns beyond a sanity magic.
 */
struct CrashNote
{
    static constexpr uint32_t kMagic = 0x43525348; // "CRSH"

    uint32_t magic = kMagic;
    int32_t signal = 0;
    uint64_t faultAddr = 0; // si_addr for SEGV/BUS/ILL/FPE, else 0
    uint64_t trialId = 0;
    uint8_t phase = 0; // TrialPhase
    uint8_t pad[7] = {};
};

static_assert(sizeof(CrashNote) == 32, "CrashNote must stay fixed-size");

/**
 * Install write(2)-only handlers for SIGSEGV, SIGBUS, SIGILL, SIGFPE,
 * and SIGABRT that dump a CrashNote to `reportFd` and re-raise.
 * Call in the worker child after fork; `reportFd` must outlive the
 * process. Passing -1 uninstalls (restores default dispositions).
 */
void installCrashHandler(int reportFd);

/**
 * Announce the trial the worker is about to touch; the handler reads
 * these with relaxed atomics. Async-signal-safe by construction.
 * When a heartbeat slot is attached, the same announcement lands there
 * as a packed progress word.
 */
void setCrashContext(uint64_t trialId, TrialPhase phase);

/**
 * Attach a shared-memory progress word (typically one slot of the
 * worker pool's mmap'd heartbeat page) that every setCrashContext()
 * call also updates with packProgress(). The supervisor reads it after
 * a death too sudden for the crash handler (SIGKILL, OOM kill) — the
 * word survives the worker. Pass nullptr to detach.
 */
void setHeartbeatSlot(std::atomic<uint64_t> *word);

/** (trialId << 8) | phase — the heartbeat encoding. */
inline constexpr uint64_t
packProgress(uint64_t trialId, TrialPhase phase)
{
    return (trialId << 8) | uint64_t(phase);
}

/**
 * Drain one CrashNote from the (non-blocking or already-EOF) read end
 * of a crash pipe. Returns false when no complete, valid note is
 * available — a worker that died without its handler firing (SIGKILL,
 * plain _exit) leaves the pipe empty, which is itself information.
 */
bool readCrashNote(int fd, CrashNote &note);

/**
 * "SIGSEGV", "SIGBUS", ... for the signals workers die from; falls
 * back to "signal <n>" spelled into `scratch` (caller-owned storage,
 * >= 32 bytes) for anything unnamed.
 */
const char *crashSignalName(int signal, char *scratch, unsigned len);

} // namespace slip

#endif // SLIPSTREAM_COMMON_CRASH_REPORT_HH
