#include "common/crash_report.hh"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <unistd.h>

namespace slip
{

const char *
trialPhaseName(TrialPhase phase)
{
    switch (phase) {
      case TrialPhase::Idle:
        return "idle";
      case TrialPhase::Receive:
        return "receive";
      case TrialPhase::Setup:
        return "setup";
      case TrialPhase::Run:
        return "run";
      case TrialPhase::Report:
        return "report";
    }
    return "?";
}

namespace
{

// Handler-visible state. Plain lock-free atomics: the handler may
// interrupt the main thread mid-store, and relaxed loads of these are
// the only reads it performs.
std::atomic<int> reportFd{-1};
std::atomic<uint64_t> currentTrial{0};
std::atomic<uint8_t> currentPhase{0};
std::atomic<std::atomic<uint64_t> *> heartbeat{nullptr};

const int kCrashSignals[] = {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT};

extern "C" void
crashHandler(int sig, siginfo_t *info, void *)
{
    CrashNote note;
    note.signal = sig;
    // si_addr is only meaningful for the hardware faults; SIGABRT's
    // siginfo carries sender data instead.
    if (sig == SIGSEGV || sig == SIGBUS || sig == SIGILL ||
        sig == SIGFPE) {
        note.faultAddr =
            reinterpret_cast<uint64_t>(info ? info->si_addr : nullptr);
    }
    note.trialId = currentTrial.load(std::memory_order_relaxed);
    note.phase = currentPhase.load(std::memory_order_relaxed);

    const int fd = reportFd.load(std::memory_order_relaxed);
    if (fd >= 0) {
        // One write of one pipe-atomic record (32 << PIPE_BUF). A
        // short or failed write is unrecoverable here; the re-raise
        // below still reports the signal through the exit status.
        ssize_t unused = write(fd, &note, sizeof(note));
        (void)unused;
    }

    // Restore default disposition and re-raise so the process dies
    // with the true signal (the supervisor reads it from waitpid).
    signal(sig, SIG_DFL);
    raise(sig);
}

} // namespace

void
installCrashHandler(int fd)
{
    reportFd.store(fd, std::memory_order_relaxed);
    if (fd < 0) {
        for (int sig : kCrashSignals)
            signal(sig, SIG_DFL);
        return;
    }
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = crashHandler;
    sa.sa_flags = SA_SIGINFO | SA_NODEFER;
    sigemptyset(&sa.sa_mask);
    for (int sig : kCrashSignals)
        sigaction(sig, &sa, nullptr);
}

void
setCrashContext(uint64_t trialId, TrialPhase phase)
{
    currentTrial.store(trialId, std::memory_order_relaxed);
    currentPhase.store(static_cast<uint8_t>(phase),
                       std::memory_order_relaxed);
    if (std::atomic<uint64_t> *word =
            heartbeat.load(std::memory_order_relaxed))
        word->store(packProgress(trialId, phase),
                    std::memory_order_relaxed);
}

void
setHeartbeatSlot(std::atomic<uint64_t> *word)
{
    heartbeat.store(word, std::memory_order_relaxed);
}

bool
readCrashNote(int fd, CrashNote &note)
{
    CrashNote buf;
    size_t have = 0;
    while (have < sizeof(buf)) {
        const ssize_t n = read(fd, reinterpret_cast<char *>(&buf) + have,
                               sizeof(buf) - have);
        if (n > 0) {
            have += size_t(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false; // EOF or would-block before a full record
    }
    if (buf.magic != CrashNote::kMagic)
        return false;
    note = buf;
    return true;
}

const char *
crashSignalName(int sig, char *scratch, unsigned len)
{
    switch (sig) {
      case SIGSEGV:
        return "SIGSEGV";
      case SIGBUS:
        return "SIGBUS";
      case SIGILL:
        return "SIGILL";
      case SIGFPE:
        return "SIGFPE";
      case SIGABRT:
        return "SIGABRT";
      case SIGKILL:
        return "SIGKILL";
      case SIGTERM:
        return "SIGTERM";
      default:
        std::snprintf(scratch, len, "signal %d", sig);
        return scratch;
    }
}

} // namespace slip
