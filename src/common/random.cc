#include "common/random.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace slip
{

namespace
{

constexpr uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

namespace
{

/** The splitmix64 golden-ratio increment. */
constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ull;

} // namespace

Rng::Rng(uint64_t seed)
{
    // Expand the single seed word through splitmix64 per the xoshiro
    // authors' recommendation; avoids the all-zero state.
    uint64_t x = seed;
    for (auto &word : s) {
        x += kGolden;
        word = mix64(x);
    }
    if ((s[0] | s[1] | s[2] | s[3]) == 0)
        s[0] = 1;
}

Rng::Rng(uint64_t seed, uint64_t stream)
{
    // Splitmix-style stream derivation: the stream id selects the
    // expansion increment ("gamma") *nonlinearly*, so no additive
    // (seed, stream) aliasing exists — Rng(5, 0) and Rng(0, 5) share
    // nothing. The gamma is forced odd (full-period splitmix) and the
    // seed word is pre-mixed with the stream so even gamma collisions
    // (probability 2^-63 per pair) would not align the sequences.
    const uint64_t gamma = mix64(stream + kGolden) | 1;
    uint64_t x = seed + mix64(stream ^ kGolden);
    for (auto &word : s) {
        x += gamma;
        word = mix64(x);
    }
    if ((s[0] | s[1] | s[2] | s[3]) == 0)
        s[0] = 1;
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    SLIP_ASSERT(bound != 0, "Rng::below(0)");
    // Debiased via rejection on the top of the range.
    const uint64_t limit = ~0ull - (~0ull % bound);
    uint64_t v;
    do {
        v = next();
    } while (v > limit);
    return v % bound;
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    SLIP_ASSERT(lo <= hi, "Rng::range lo > hi");
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next());
    return lo + static_cast<int64_t>(below(span));
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return real() < p;
}

double
Rng::real()
{
    // 53 high-quality bits into the mantissa.
    return (next() >> 11) * (1.0 / 9007199254740992.0);
}

} // namespace slip
