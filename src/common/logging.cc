#include "common/logging.hh"

#include <atomic>
#include <exception>
#include <iostream>
#include <new>
#include <system_error>

namespace slip
{

namespace
{
std::atomic<bool> quietFlag{false};
} // namespace

void
setLogQuiet(bool quiet)
{
    quietFlag.store(quiet);
}

bool
logQuiet()
{
    return quietFlag.load();
}

const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::UserError:
        return "user_error";
      case ErrorKind::InternalError:
        return "internal_error";
      case ErrorKind::Resource:
        return "resource";
      case ErrorKind::Unknown:
        return "unknown";
    }
    return "?";
}

bool
errorRetryable(ErrorKind kind)
{
    // Deterministic failures (user input, simulator bugs) reproduce
    // on re-execution; only host-side resource trouble can pass.
    return kind == ErrorKind::Resource;
}

ErrorInfo
classifyCurrentException()
{
    try {
        throw;
    } catch (const FatalError &e) {
        return {ErrorKind::UserError, e.what()};
    } catch (const PanicError &e) {
        return {ErrorKind::InternalError, e.what()};
    } catch (const std::bad_alloc &e) {
        return {ErrorKind::Resource, e.what()};
    } catch (const std::system_error &e) {
        return {ErrorKind::Resource, e.what()};
    } catch (const std::exception &e) {
        return {ErrorKind::Unknown, e.what()};
    } catch (...) {
        return {ErrorKind::Unknown, "non-standard exception"};
    }
}

ErrorInfo
classifyException(std::exception_ptr exception)
{
    if (!exception)
        return {ErrorKind::Unknown, "no exception"};
    try {
        std::rethrow_exception(exception);
    } catch (...) {
        return classifyCurrentException();
    }
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "panic: " << msg << " [" << file << ":" << line << "]";
    throw PanicError(os.str());
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "fatal: " << msg << " [" << file << ":" << line << "]";
    throw FatalError(os.str());
}

void
warnImpl(const std::string &msg)
{
    if (!quietFlag.load())
        std::cerr << "warn: " << msg << "\n";
}

void
informImpl(const std::string &msg)
{
    if (!quietFlag.load())
        std::cerr << "info: " << msg << "\n";
}

} // namespace detail

} // namespace slip
