#include "common/env.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "common/logging.hh"

namespace slip
{

namespace
{

/**
 * The raw value of $name, or nullptr when the variable is unset OR
 * set to an empty / whitespace-only string. `FOO= cmd` and
 * `FOO=" " cmd` are how shells and supervisors *clear* a knob, not
 * how anyone spells a value — every helper treats them as unset, so
 * an empty SLIPSTREAM_DETECT= can never trip the strict mode-knob
 * contract. Leading/trailing whitespace around a real value is NOT
 * stripped here; the individual parsers decide what they accept.
 */
const char *
envRaw(const char *name)
{
    const char *env = std::getenv(name);
    if (!env)
        return nullptr;
    for (const char *p = env; *p; ++p)
        if (!std::isspace(static_cast<unsigned char>(*p)))
            return env;
    return nullptr;
}

} // namespace

uint64_t
envU64(const char *name, uint64_t fallback)
{
    const char *env = envRaw(name);
    if (!env)
        return fallback;
    // strtoull silently accepts "-1" by wrapping; reject signs up
    // front so garbage cannot masquerade as a huge count.
    const char *p = env;
    while (std::isspace(static_cast<unsigned char>(*p)))
        ++p;
    char *end = nullptr;
    errno = 0;
    const unsigned long long n = std::strtoull(p, &end, 10);
    if (*p != '-' && *p != '+' && end != p && *end == '\0' &&
        errno != ERANGE)
        return uint64_t(n);
    SLIP_WARN("ignoring ", name, "='", env,
              "' (want a non-negative integer); using ", fallback);
    return fallback;
}

bool
envFlag(const char *name, bool fallback)
{
    const char *env = envRaw(name);
    if (!env)
        return fallback;
    std::string v;
    for (const char *p = env; *p; ++p)
        v.push_back(char(std::tolower(static_cast<unsigned char>(*p))));
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    SLIP_WARN("ignoring ", name, "='", env,
              "' (want a boolean: 0/1/true/false/yes/no/on/off); "
              "using ",
              fallback ? "true" : "false");
    return fallback;
}

size_t
envChoice(const char *name,
          std::initializer_list<const char *> choices, size_t fallback)
{
    const char *env = envRaw(name);
    if (!env)
        return fallback;
    size_t i = 0;
    for (const char *choice : choices) {
        if (std::string(env) == choice)
            return i;
        ++i;
    }
    std::string valid;
    for (const char *choice : choices) {
        if (!valid.empty())
            valid += '|';
        valid += choice;
    }
    SLIP_FATAL(name, "='", env, "' is not a valid mode (want ", valid,
               "); refusing to guess");
}

} // namespace slip
