#include "common/stats.hh"

#include <iomanip>

namespace slip
{

StatGroup::StatGroup(std::string name)
    : name_(std::move(name))
{
}

Counter &
StatGroup::counter(const std::string &name)
{
    return counters[name];
}

Distribution &
StatGroup::distribution(const std::string &name)
{
    return distributions[name];
}

uint64_t
StatGroup::get(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second.value();
}

const Distribution &
StatGroup::getDistribution(const std::string &name) const
{
    auto it = distributions.find(name);
    SLIP_ASSERT(it != distributions.end(),
                "no distribution named '", name, "' in group '", name_, "'");
    return it->second;
}

bool
StatGroup::hasCounter(const std::string &name) const
{
    return counters.count(name) != 0;
}

void
StatGroup::dump(std::ostream &os) const
{
    const std::string prefix = name_.empty() ? "" : name_ + ".";
    for (const auto &[name, c] : counters)
        os << prefix << name << " " << c.value() << "\n";
    for (const auto &[name, d] : distributions) {
        os << prefix << name << ".count " << d.count() << "\n"
           << prefix << name << ".mean " << std::fixed
           << std::setprecision(2) << d.mean() << "\n"
           << prefix << name << ".min " << d.min() << "\n"
           << prefix << name << ".max " << d.max() << "\n";
    }
}

void
StatGroup::reset()
{
    for (auto &[name, c] : counters)
        c.reset();
    for (auto &[name, d] : distributions)
        d.reset();
}

} // namespace slip
