#include "common/stats.hh"

#include <iomanip>

namespace slip
{

StatGroup::StatGroup(std::string name)
    : name_(std::move(name))
{
}

Counter &
StatGroup::counter(const std::string &name)
{
    SLIP_ASSERT(external.find(name) == external.end(),
                "counter '", name, "' in group '", name_,
                "' is linked to an external value");
    return counters[name];
}

void
StatGroup::link(const std::string &name, uint64_t &value)
{
    SLIP_ASSERT(counters.find(name) == counters.end(),
                "cannot link '", name, "' in group '", name_,
                "': an owned counter with that name exists");
    external[name] = &value;
}

Distribution &
StatGroup::distribution(const std::string &name)
{
    return distributions[name];
}

Histogram &
StatGroup::histogram(const std::string &name)
{
    return histograms[name];
}

TimeSeries &
StatGroup::timeSeries(const std::string &name, uint64_t window)
{
    auto it = series.find(name);
    if (it == series.end())
        it = series.emplace(name, TimeSeries(window)).first;
    return it->second;
}

uint64_t
StatGroup::get(const std::string &name) const
{
    auto it = counters.find(name);
    if (it != counters.end())
        return it->second.value();
    auto ext = external.find(name);
    return ext == external.end() ? 0 : *ext->second;
}

const Distribution &
StatGroup::getDistribution(const std::string &name) const
{
    auto it = distributions.find(name);
    SLIP_ASSERT(it != distributions.end(),
                "no distribution named '", name, "' in group '", name_, "'");
    return it->second;
}

const Histogram &
StatGroup::getHistogram(const std::string &name) const
{
    auto it = histograms.find(name);
    SLIP_ASSERT(it != histograms.end(), "no histogram named '", name,
                "' in group '", name_, "'");
    return it->second;
}

const TimeSeries &
StatGroup::getTimeSeries(const std::string &name) const
{
    auto it = series.find(name);
    SLIP_ASSERT(it != series.end(), "no time series named '", name,
                "' in group '", name_, "'");
    return it->second;
}

bool
StatGroup::hasCounter(const std::string &name) const
{
    return counters.count(name) != 0 || external.count(name) != 0;
}

bool
StatGroup::hasHistogram(const std::string &name) const
{
    return histograms.count(name) != 0;
}

void
StatGroup::dump(std::ostream &os) const
{
    const std::string prefix = name_.empty() ? "" : name_ + ".";

    // Merge owned and linked counters so output stays name-sorted.
    std::map<std::string, uint64_t> merged;
    for (const auto &[name, c] : counters)
        merged[name] = c.value();
    for (const auto &[name, p] : external)
        merged[name] = *p;

    for (const auto &[name, v] : merged)
        os << prefix << name << " " << v << "\n";
    for (const auto &[name, d] : distributions) {
        os << prefix << name << ".count " << d.count() << "\n"
           << prefix << name << ".mean " << std::fixed
           << std::setprecision(2) << d.mean() << "\n"
           << prefix << name << ".min " << d.min() << "\n"
           << prefix << name << ".max " << d.max() << "\n";
    }
    for (const auto &[name, h] : histograms) {
        os << prefix << name << ".count " << h.count() << "\n"
           << prefix << name << ".mean " << std::fixed
           << std::setprecision(2) << h.mean() << "\n"
           << prefix << name << ".min " << h.min() << "\n"
           << prefix << name << ".max " << h.max() << "\n";
        for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
            if (h.bucket(b) == 0)
                continue;
            os << prefix << name << ".bucket[" << Histogram::bucketLo(b)
               << "-" << Histogram::bucketHi(b) << "] " << h.bucket(b)
               << "\n";
        }
    }
    for (const auto &[name, ts] : series) {
        os << prefix << name << ".window " << ts.window() << "\n"
           << prefix << name << ".windows " << ts.windows() << "\n"
           << prefix << name << ".total " << ts.total() << "\n"
           << prefix << name << ".mean_per_window " << std::fixed
           << std::setprecision(2) << ts.meanPerWindow() << "\n";
    }
}

void
StatGroup::reset()
{
    for (auto &[name, c] : counters)
        c.reset();
    for (auto &[name, p] : external)
        *p = 0;
    for (auto &[name, d] : distributions)
        d.reset();
    for (auto &[name, h] : histograms)
        h.reset();
    for (auto &[name, ts] : series)
        ts.reset();
}

} // namespace slip
