/**
 * @file
 * Error and status reporting in the gem5 idiom.
 *
 * panic()  — an internal simulator invariant was violated (a bug in this
 *            library); aborts so a debugger/core dump can catch it.
 * fatal()  — the simulation cannot continue due to a user error (bad
 *            configuration, malformed assembly, ...); exits with code 1.
 * warn()   — something is suspicious but the simulation continues.
 * inform() — status messages.
 */

#ifndef SLIPSTREAM_COMMON_LOGGING_HH
#define SLIPSTREAM_COMMON_LOGGING_HH

#include <exception>
#include <sstream>
#include <stdexcept>
#include <string>

namespace slip
{

/**
 * Exception thrown by fatal(). Using an exception (rather than exit())
 * keeps the library embeddable and lets tests assert on user-error paths.
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/**
 * Exception thrown by panic(). Tests use this to assert that internal
 * invariant checks fire; the top-level drivers treat it as a crash.
 */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/**
 * Coarse classification of a caught exception, used by the trial
 * supervisor to decide whether re-running a failed job could help.
 *
 * UserError      fatal(): bad configuration or input — deterministic,
 *                retrying reproduces it.
 * InternalError  panic(): a simulator invariant broke — deterministic,
 *                and retrying would hide a bug.
 * Resource       a host-side resource failure (allocation, OS error) —
 *                plausibly transient, the only retryable kind.
 * Unknown        anything else.
 */
enum class ErrorKind : uint8_t
{
    UserError,
    InternalError,
    Resource,
    Unknown,
};

/** "user_error", "internal_error", "resource", "unknown". */
const char *errorKindName(ErrorKind kind);

/** Whether re-running the failed work could plausibly succeed. */
bool errorRetryable(ErrorKind kind);

/** A classified exception: its kind plus the what() text. */
struct ErrorInfo
{
    ErrorKind kind = ErrorKind::Unknown;
    std::string message;
};

/**
 * Classify the exception currently in flight. Only meaningful inside
 * a catch block; returns Unknown with a placeholder message for
 * non-std::exception throws. std::bad_alloc (and anything derived
 * from it) classifies as Resource — OOM-ish failures must reach the
 * supervisor's retry-with-backoff path, not dead-end as Unknown.
 */
ErrorInfo classifyCurrentException();

/**
 * Classify a captured exception. Null pointers classify as Unknown —
 * fork-isolated outcomes carry no exception_ptr across the process
 * boundary, and callers handle that case on the message/kind fields
 * instead.
 */
ErrorInfo classifyException(std::exception_ptr exception);

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Concatenate a parameter pack into one string via a stream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Toggle for warn()/inform() output (benchmarks silence them). */
void setLogQuiet(bool quiet);
bool logQuiet();

} // namespace slip

#define SLIP_PANIC(...) \
    ::slip::detail::panicImpl(__FILE__, __LINE__, \
                              ::slip::detail::concat(__VA_ARGS__))

#define SLIP_FATAL(...) \
    ::slip::detail::fatalImpl(__FILE__, __LINE__, \
                              ::slip::detail::concat(__VA_ARGS__))

#define SLIP_WARN(...) \
    ::slip::detail::warnImpl(::slip::detail::concat(__VA_ARGS__))

#define SLIP_INFORM(...) \
    ::slip::detail::informImpl(::slip::detail::concat(__VA_ARGS__))

/** Invariant check that survives NDEBUG builds; panics with a message. */
#define SLIP_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            SLIP_PANIC("assertion failed: " #cond " — ", ##__VA_ARGS__); \
        } \
    } while (0)

#endif // SLIPSTREAM_COMMON_LOGGING_HH
