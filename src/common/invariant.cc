#include "common/invariant.hh"

#include <atomic>

#include "common/env.hh"

namespace slip::invariants
{

namespace
{

std::atomic<bool> &
flag()
{
    // First use seeds from the environment so whole-process runs
    // (nightly fuzz, ASan campaigns) can enable checking without code
    // changes; setEnabled() overrides thereafter.
    static std::atomic<bool> on{envFlag("SLIPSTREAM_INVARIANTS", false)};
    return on;
}

} // namespace

bool
enabled()
{
    return flag().load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    flag().store(on, std::memory_order_relaxed);
}

void
violationImpl(const char *file, int line, const std::string &msg)
{
    // Mirror panicImpl's message shape, but throw a catchable,
    // distinct type: the fuzzer converts violations into repro
    // bundles, and tests assert on them directly.
    throw InvariantViolation(detail::concat(file, ":", line, ": ", msg));
}

} // namespace slip::invariants
