/**
 * @file
 * Lightweight statistics package in the spirit of classic simulator
 * stats frameworks: named scalar counters and distributions are
 * registered with a StatGroup, which can be dumped as formatted text.
 * Every model component owns a StatGroup so benchmarks and tests can
 * inspect behaviour without poking at internals.
 */

#ifndef SLIPSTREAM_COMMON_STATS_HH
#define SLIPSTREAM_COMMON_STATS_HH

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace slip
{

/** A named monotonically increasing counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(uint64_t n) { value_ += n; return *this; }

    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/** Tracks min / max / sum / count of a sampled quantity. */
class Distribution
{
  public:
    void
    sample(uint64_t v)
    {
        if (count_ == 0 || v < min_)
            min_ = v;
        if (count_ == 0 || v > max_)
            max_ = v;
        sum_ += v;
        ++count_;
    }

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t min() const { return count_ ? min_ : 0; }
    uint64_t max() const { return count_ ? max_ : 0; }

    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) / count_ : 0.0;
    }

    void
    reset()
    {
        min_ = max_ = sum_ = count_ = 0;
    }

  private:
    uint64_t min_ = 0;
    uint64_t max_ = 0;
    uint64_t sum_ = 0;
    uint64_t count_ = 0;
};

/**
 * Log2-bucketed histogram of a sampled quantity. Bucket 0 holds value
 * 0; bucket b >= 1 holds values in [2^(b-1), 2^b). 65 buckets cover
 * the full uint64_t range, so sampling is an increment at a computed
 * index — cheap enough for per-event telemetry (detection latencies,
 * occupancies, span lengths) where a mean alone hides the tail.
 */
class Histogram
{
  public:
    static constexpr unsigned kBuckets = 65;

    /** Bucket index of a value: 0 for 0, else 1 + floor(log2 v). */
    static unsigned
    bucketOf(uint64_t v)
    {
        return v == 0 ? 0 : unsigned(std::bit_width(v));
    }

    /** Smallest value landing in bucket b. */
    static uint64_t
    bucketLo(unsigned b)
    {
        return b == 0 ? 0 : uint64_t(1) << (b - 1);
    }

    /** Largest value landing in bucket b. */
    static uint64_t
    bucketHi(unsigned b)
    {
        return b >= 64 ? ~uint64_t(0) : (uint64_t(1) << b) - 1;
    }

    void
    sample(uint64_t v)
    {
        ++buckets_[bucketOf(v)];
        if (count_ == 0 || v < min_)
            min_ = v;
        if (count_ == 0 || v > max_)
            max_ = v;
        sum_ += v;
        ++count_;
    }

    /**
     * Credit `n` samples directly to bucket `b` (reconstructing a
     * histogram from journaled bucket counts). min/max/sum are
     * approximated by the bucket's lower bound.
     */
    void
    addToBucket(unsigned b, uint64_t n)
    {
        SLIP_ASSERT(b < kBuckets, "histogram bucket ", b,
                    " out of range");
        if (n == 0)
            return;
        const uint64_t lo = bucketLo(b);
        buckets_[b] += n;
        if (count_ == 0 || lo < min_)
            min_ = lo;
        if (count_ == 0 || lo > max_)
            max_ = lo;
        sum_ += lo * n;
        count_ += n;
    }

    void
    merge(const Histogram &other)
    {
        if (other.count_ == 0)
            return;
        for (unsigned b = 0; b < kBuckets; ++b)
            buckets_[b] += other.buckets_[b];
        if (count_ == 0 || other.min_ < min_)
            min_ = other.min_;
        if (count_ == 0 || other.max_ > max_)
            max_ = other.max_;
        sum_ += other.sum_;
        count_ += other.count_;
    }

    uint64_t bucket(unsigned b) const { return buckets_[b]; }
    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t min() const { return count_ ? min_ : 0; }
    uint64_t max() const { return count_ ? max_ : 0; }

    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) / count_ : 0.0;
    }

    void
    reset()
    {
        buckets_.fill(0);
        min_ = max_ = sum_ = count_ = 0;
    }

  private:
    std::array<uint64_t, kBuckets> buckets_{};
    uint64_t min_ = 0;
    uint64_t max_ = 0;
    uint64_t sum_ = 0;
    uint64_t count_ = 0;
};

/**
 * Fixed-window time series: record(cycle, delta) accumulates deltas
 * into consecutive windows of `window` cycles, so a run's IPC (or any
 * rate) can be rendered over time instead of as one end-of-run
 * average. Storage grows one uint64_t per elapsed window.
 */
class TimeSeries
{
  public:
    explicit TimeSeries(uint64_t window = 1024)
        : window_(window > 0 ? window : 1)
    {
    }

    void
    record(uint64_t cycle, uint64_t delta)
    {
        const size_t w = size_t(cycle / window_);
        if (w >= sums_.size())
            sums_.resize(w + 1, 0);
        sums_[w] += delta;
    }

    uint64_t window() const { return window_; }
    size_t windows() const { return sums_.size(); }

    uint64_t
    windowSum(size_t w) const
    {
        return w < sums_.size() ? sums_[w] : 0;
    }

    uint64_t
    total() const
    {
        uint64_t t = 0;
        for (uint64_t s : sums_)
            t += s;
        return t;
    }

    /** Mean delta per window over the recorded span. */
    double
    meanPerWindow() const
    {
        return sums_.empty()
                   ? 0.0
                   : static_cast<double>(total()) / sums_.size();
    }

    void reset() { sums_.clear(); }

  private:
    uint64_t window_;
    std::vector<uint64_t> sums_;
};

/**
 * A registry of named counters and distributions. Components create
 * stats lazily by name; dump() prints them sorted for stable output.
 *
 * Two mechanisms keep string lookups off simulation hot paths:
 *
 *  - Handle: resolves the name to its Counter once (counters have
 *    stable addresses; the registry is node-based), so per-event code
 *    pays a pointer increment instead of a map lookup.
 *  - link(): registers an external plain uint64_t that the component
 *    increments directly; the group folds it into get()/dump()/reset()
 *    on demand. Used for the per-instruction core and cache counters.
 */
class StatGroup
{
  public:
    /**
     * A pre-resolved counter reference. Obtain via handle(); the
     * default-constructed state is unbound and must not be
     * incremented.
     */
    class Handle
    {
      public:
        Handle() = default;

        // Increment mutates the referenced Counter, not the Handle,
        // so these are const: usable from const methods alongside a
        // `mutable StatGroup` (the established stats idiom here).
        const Handle &operator++() const { ++*c_; return *this; }
        const Handle &operator+=(uint64_t n) const { *c_ += n; return *this; }

        uint64_t value() const { return c_ ? c_->value() : 0; }
        bool bound() const { return c_ != nullptr; }

      private:
        friend class StatGroup;
        explicit Handle(Counter &c) : c_(&c) {}

        Counter *c_ = nullptr;
    };

    explicit StatGroup(std::string name = "");

    /** Find-or-create a counter with the given name. */
    Counter &counter(const std::string &name);

    /**
     * Find-or-create a counter and return a pre-resolved Handle to
     * it: the string key is paid once, at construction time.
     */
    Handle handle(const std::string &name) { return Handle(counter(name)); }

    /**
     * Register an external counter: a plain integer the owner bumps
     * directly on its hot path. The group reads it through the
     * pointer in get()/hasCounter()/dump() and zeroes it in reset().
     * `value` must outlive the group.
     */
    void link(const std::string &name, uint64_t &value);

    /** Find-or-create a distribution with the given name. */
    Distribution &distribution(const std::string &name);

    /** Find-or-create a log2-bucketed histogram with the given name. */
    Histogram &histogram(const std::string &name);

    /**
     * Find-or-create a time series. `window` applies on creation
     * only; later calls return the existing series unchanged.
     */
    TimeSeries &timeSeries(const std::string &name,
                           uint64_t window = 1024);

    /** Counter value, or 0 if the counter was never created. */
    uint64_t get(const std::string &name) const;

    /** Distribution lookup; panics if absent. */
    const Distribution &getDistribution(const std::string &name) const;

    /** Histogram lookup; panics if absent. */
    const Histogram &getHistogram(const std::string &name) const;

    /** Time-series lookup; panics if absent. */
    const TimeSeries &getTimeSeries(const std::string &name) const;

    bool hasCounter(const std::string &name) const;
    bool hasHistogram(const std::string &name) const;

    /** Print all stats, one per line, prefixed with the group name. */
    void dump(std::ostream &os) const;

    /** Zero every registered stat. */
    void reset();

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::map<std::string, Counter> counters;
    std::map<std::string, uint64_t *> external;
    std::map<std::string, Distribution> distributions;
    std::map<std::string, Histogram> histograms;
    std::map<std::string, TimeSeries> series;
};

} // namespace slip

#endif // SLIPSTREAM_COMMON_STATS_HH
