/**
 * @file
 * Lightweight statistics package in the spirit of classic simulator
 * stats frameworks: named scalar counters and distributions are
 * registered with a StatGroup, which can be dumped as formatted text.
 * Every model component owns a StatGroup so benchmarks and tests can
 * inspect behaviour without poking at internals.
 */

#ifndef SLIPSTREAM_COMMON_STATS_HH
#define SLIPSTREAM_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "common/logging.hh"

namespace slip
{

/** A named monotonically increasing counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(uint64_t n) { value_ += n; return *this; }

    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/** Tracks min / max / sum / count of a sampled quantity. */
class Distribution
{
  public:
    void
    sample(uint64_t v)
    {
        if (count_ == 0 || v < min_)
            min_ = v;
        if (count_ == 0 || v > max_)
            max_ = v;
        sum_ += v;
        ++count_;
    }

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t min() const { return count_ ? min_ : 0; }
    uint64_t max() const { return count_ ? max_ : 0; }

    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) / count_ : 0.0;
    }

    void
    reset()
    {
        min_ = max_ = sum_ = count_ = 0;
    }

  private:
    uint64_t min_ = 0;
    uint64_t max_ = 0;
    uint64_t sum_ = 0;
    uint64_t count_ = 0;
};

/**
 * A registry of named counters and distributions. Components create
 * stats lazily by name; dump() prints them sorted for stable output.
 *
 * Two mechanisms keep string lookups off simulation hot paths:
 *
 *  - Handle: resolves the name to its Counter once (counters have
 *    stable addresses; the registry is node-based), so per-event code
 *    pays a pointer increment instead of a map lookup.
 *  - link(): registers an external plain uint64_t that the component
 *    increments directly; the group folds it into get()/dump()/reset()
 *    on demand. Used for the per-instruction core and cache counters.
 */
class StatGroup
{
  public:
    /**
     * A pre-resolved counter reference. Obtain via handle(); the
     * default-constructed state is unbound and must not be
     * incremented.
     */
    class Handle
    {
      public:
        Handle() = default;

        // Increment mutates the referenced Counter, not the Handle,
        // so these are const: usable from const methods alongside a
        // `mutable StatGroup` (the established stats idiom here).
        const Handle &operator++() const { ++*c_; return *this; }
        const Handle &operator+=(uint64_t n) const { *c_ += n; return *this; }

        uint64_t value() const { return c_ ? c_->value() : 0; }
        bool bound() const { return c_ != nullptr; }

      private:
        friend class StatGroup;
        explicit Handle(Counter &c) : c_(&c) {}

        Counter *c_ = nullptr;
    };

    explicit StatGroup(std::string name = "");

    /** Find-or-create a counter with the given name. */
    Counter &counter(const std::string &name);

    /**
     * Find-or-create a counter and return a pre-resolved Handle to
     * it: the string key is paid once, at construction time.
     */
    Handle handle(const std::string &name) { return Handle(counter(name)); }

    /**
     * Register an external counter: a plain integer the owner bumps
     * directly on its hot path. The group reads it through the
     * pointer in get()/hasCounter()/dump() and zeroes it in reset().
     * `value` must outlive the group.
     */
    void link(const std::string &name, uint64_t &value);

    /** Find-or-create a distribution with the given name. */
    Distribution &distribution(const std::string &name);

    /** Counter value, or 0 if the counter was never created. */
    uint64_t get(const std::string &name) const;

    /** Distribution lookup; panics if absent. */
    const Distribution &getDistribution(const std::string &name) const;

    bool hasCounter(const std::string &name) const;

    /** Print all stats, one per line, prefixed with the group name. */
    void dump(std::ostream &os) const;

    /** Zero every registered stat. */
    void reset();

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::map<std::string, Counter> counters;
    std::map<std::string, uint64_t *> external;
    std::map<std::string, Distribution> distributions;
};

} // namespace slip

#endif // SLIPSTREAM_COMMON_STATS_HH
