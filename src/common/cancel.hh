/**
 * @file
 * Cooperative cancellation for long-running simulations.
 *
 * A CancelToken is a one-way latch shared between a supervisor (which
 * sets it, typically from a deadline watchdog thread) and a simulation
 * loop (which polls it once per cycle and winds down cleanly when it
 * fires). Polling is a single relaxed atomic load — negligible next to
 * the cost of a simulated cycle — so a stuck trial can be reaped
 * without signals, thread cancellation, or killing the process.
 */

#ifndef SLIPSTREAM_COMMON_CANCEL_HH
#define SLIPSTREAM_COMMON_CANCEL_HH

#include <atomic>

namespace slip
{

class CancelToken
{
  public:
    CancelToken() = default;
    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Request cancellation. Safe from any thread; irrevocable. */
    void cancel() { flag_.store(true, std::memory_order_relaxed); }

    /** Poll. Safe from any thread. */
    bool cancelled() const
    {
        return flag_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> flag_{false};
};

} // namespace slip

#endif // SLIPSTREAM_COMMON_CANCEL_HH
