/**
 * @file
 * Small bit-manipulation helpers used throughout the simulator:
 * field extraction/insertion for instruction encoding, sign extension,
 * and mixing hashes for predictor indexing.
 */

#ifndef SLIPSTREAM_COMMON_BITUTILS_HH
#define SLIPSTREAM_COMMON_BITUTILS_HH

#include <cstdint>

#include "common/logging.hh"

namespace slip
{

/** Extract bits [lo, lo+width) of v. */
constexpr uint64_t
bits(uint64_t v, unsigned lo, unsigned width)
{
    return (v >> lo) & ((width >= 64) ? ~0ull : ((1ull << width) - 1));
}

/** Insert the low `width` bits of field at position lo of v. */
constexpr uint64_t
insertBits(uint64_t v, unsigned lo, unsigned width, uint64_t field)
{
    const uint64_t mask =
        ((width >= 64) ? ~0ull : ((1ull << width) - 1)) << lo;
    return (v & ~mask) | ((field << lo) & mask);
}

/** Sign-extend the low `width` bits of v to 64 bits. */
constexpr int64_t
sext(uint64_t v, unsigned width)
{
    const unsigned shift = 64 - width;
    return static_cast<int64_t>(v << shift) >> shift;
}

/** True iff v fits in a signed `width`-bit field. */
constexpr bool
fitsSigned(int64_t v, unsigned width)
{
    const int64_t lo = -(1ll << (width - 1));
    const int64_t hi = (1ll << (width - 1)) - 1;
    return v >= lo && v <= hi;
}

/** True iff v fits in an unsigned `width`-bit field. */
constexpr bool
fitsUnsigned(uint64_t v, unsigned width)
{
    return width >= 64 || v < (1ull << width);
}

/**
 * 64-bit finalizing mix (splitmix64). Used to hash trace ids and path
 * histories into predictor table indices; chosen for determinism and
 * good avalanche rather than cryptographic strength.
 */
constexpr uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Combine two hashes (boost::hash_combine flavor, 64-bit). */
constexpr uint64_t
hashCombine(uint64_t seed, uint64_t v)
{
    return seed ^ (mix64(v) + 0x9e3779b97f4a7c15ull + (seed << 6) +
                   (seed >> 2));
}

/** True iff v is a power of two (v != 0). */
constexpr bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
floorLog2(uint64_t v)
{
    unsigned l = 0;
    while (v > 1) {
        v >>= 1;
        ++l;
    }
    return l;
}

/** Population count of a 64-bit word. */
constexpr unsigned
popCount(uint64_t v)
{
    unsigned c = 0;
    while (v) {
        v &= v - 1;
        ++c;
    }
    return c;
}

} // namespace slip

#endif // SLIPSTREAM_COMMON_BITUTILS_HH
