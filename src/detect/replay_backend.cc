#include "detect/replay_backend.hh"

#include "assembler/program.hh"
#include "func/executor.hh"
#include "isa/regnames.hh"

namespace slip
{

ReplayBackend::ReplayBackend(const DetectParams &params,
                             const Program &program,
                             FaultInjector &injector)
    : DetectionBackend(injector), program_(program),
      window_(params.replayWindow ? params.replayWindow : 1),
      width_(params.replayWidth ? params.replayWidth : 1),
      port_(shadowMem_), shadow_(port_)
{
    program_.loadInto(shadowMem_);
    shadow_.setPc(program_.entry());
    shadow_.writeReg(reg::sp, layout::kStackTop);
    pending_.reserve(window_);
}

void
ReplayBackend::onRetire(const DynInst &d, Cycle now)
{
    pending_.push_back(Entry{d.pc, d.exec});
    if (pending_.size() >= window_)
        flushWindow(now);
}

void
ReplayBackend::onSuspicion(Cycle now)
{
    flushWindow(now);
}

void
ReplayBackend::onDegrade(const ArchState &resume, const Memory &mem,
                         Cycle now)
{
    // Validate what retired before the gap, then resync: the degrade
    // flush discarded walked-but-unretired instructions whose
    // architectural effects are already in `resume`/`mem`, so the
    // shadow can only rejoin the leader by adopting that state.
    flushWindow(now);
    shadow_.copyRegsFrom(resume);
    shadow_.setPc(resume.pc());
    shadowMem_ = mem.clone();
}

void
ReplayBackend::finish(Cycle now)
{
    flushWindow(now);
}

void
ReplayBackend::flushWindow(Cycle now)
{
    if (pending_.empty())
        return;
    for (const Entry &e : pending_)
        replayOne(e, now);
    stats_.replays += 1;
    stats_.replayedInsts += pending_.size();
    stats_.checked += pending_.size();
    stats_.overheadCycles += (pending_.size() + width_ - 1) / width_;
    pending_.clear();
}

void
ReplayBackend::replayOne(const Entry &e, Cycle now)
{
    shadow_.setPc(e.pc);
    const ExecResult got =
        executeMicro(shadow_, program_.microAt(e.pc), nullptr);

    bool mismatch = got.nextPc != e.exec.nextPc;
    if (got.wroteReg != e.exec.wroteReg ||
        (got.wroteReg && (got.destReg != e.exec.destReg ||
                          got.destValue != e.exec.destValue))) {
        mismatch = true;
    }
    if (got.isMem != e.exec.isMem ||
        (got.isMem && (got.memAddr != e.exec.memAddr ||
                       got.memBytes != e.exec.memBytes))) {
        mismatch = true;
    }
    if (got.isMem && e.exec.isMem && !got.wroteReg &&
        got.storeValue != e.exec.storeValue) {
        mismatch = true;
    }
    if (!mismatch)
        return;

    reportMismatch(now);

    // Resync the shadow onto the leader's (authoritative, possibly
    // fault-propagated) retirement values so one corruption front
    // costs one mismatch instead of one per dependent instruction.
    // A stray shadow store the leader didn't make is left in place —
    // an accepted modeling artifact; the next load of that cell
    // resyncs it the same way.
    if (e.exec.wroteReg)
        shadow_.writeReg(e.exec.destReg, e.exec.destValue);
    if (e.exec.isMem) {
        if (e.exec.wroteReg) {
            // Load: heal the shadow cell with what the leader read.
            shadow_.mem().write(e.exec.memAddr, e.exec.memBytes,
                                e.exec.loadedValue);
        } else {
            // Store: land the leader's value at the leader's address.
            shadow_.mem().write(e.exec.memAddr, e.exec.memBytes,
                                e.exec.storeValue);
        }
    }
}

} // namespace slip
