/**
 * @file
 * Detection-backend selection and tuning knobs.
 *
 * Three rival error-detection architectures share one processor
 * substrate (the slipstream CMP with its 8-target fault injector):
 *
 *  - slipstream: the paper's native mechanism — the R-stream checks
 *    the A-stream through the delay buffer. No extra hardware, no
 *    extra overhead; misses corruption outside the redundant sphere
 *    (non-redundant R-pipeline faults, memory cells).
 *  - replay: RepTFD-style. The retired instruction stream is
 *    re-executed functionally in windows from a rolling shadow
 *    register/memory snapshot; a diff against retirement state
 *    exposes silent architectural corruption. Windows also flush on
 *    suspicion triggers (every recovery, including watchdog-forced).
 *  - checker: MEEK-style little checker core. A simplified in-order
 *    checker with its own register file re-executes every retired
 *    instruction at a configurable bandwidth ratio, trusting the
 *    leader's load values; mismatches surface with the checker's lag
 *    as detection latency, and queue backpressure as overhead.
 *
 * Selection rides $SLIPSTREAM_DETECT (slipstream|replay|checker) and
 * FaultCampaignConfig. Mode knobs parse STRICTLY: an unknown value
 * throws instead of silently falling back (common/env::envChoice).
 */

#ifndef SLIPSTREAM_DETECT_DETECT_PARAMS_HH
#define SLIPSTREAM_DETECT_DETECT_PARAMS_HH

#include <cstdint>
#include <string>

namespace slip
{

/** Which detection architecture observes the run. */
enum class DetectBackendKind : uint8_t
{
    Slipstream, // native delay-buffer comparison only
    Replay,     // windowed functional re-execution (RepTFD-style)
    Checker,    // bandwidth-limited in-order checker core (MEEK-style)
};

inline constexpr unsigned kNumDetectBackends = 3;

/** "slipstream", "replay", "checker" (report keys). */
const char *detectBackendName(DetectBackendKind kind);

/** Inverse of detectBackendName; false on anything else. */
bool parseDetectBackend(const std::string &text,
                        DetectBackendKind &out);

/**
 * $SLIPSTREAM_DETECT: unset/empty means `fallback`; a listed name
 * wins; anything else throws FatalError listing the valid choices
 * (the strict mode-knob contract).
 */
DetectBackendKind detectBackendFromEnv(
    DetectBackendKind fallback = DetectBackendKind::Slipstream);

/** Backend selection plus tuning, carried inside SlipstreamParams. */
struct DetectParams
{
    DetectBackendKind kind = DetectBackendKind::Slipstream;

    /** Replay: retired instructions per replay window. */
    uint64_t replayWindow = 256;

    /** Replay: instructions re-executed per modeled cycle. */
    unsigned replayWidth = 4;

    /** Checker: leader instructions validated per modeled cycle. */
    unsigned checkerBandwidth = 2;

    /** Checker: retired-slot queue depth before the leader stalls. */
    unsigned checkerQueue = 64;
};

/**
 * `base` with the environment applied: $SLIPSTREAM_DETECT (strict),
 * $SLIPSTREAM_REPLAY_WINDOW and $SLIPSTREAM_CHECKER_BANDWIDTH
 * (numeric knobs, usual warn-and-fall-back contract; zero is
 * rejected — a zero-width backend cannot make progress).
 */
DetectParams detectParamsFromEnv(DetectParams base = {});

/** What a backend did during one run (lands in RunMetrics). */
struct DetectStats
{
    uint64_t checked = 0;    // retired instructions validated
    uint64_t mismatches = 0; // raw mismatch events observed
    /** Fault records newly marked detected by this backend. */
    uint64_t externalDetections = 0;
    uint64_t replays = 0;       // replay windows flushed
    uint64_t replayedInsts = 0; // instructions re-executed
    /** Modeled detection cost in cycles (replay time / stalls). */
    uint64_t overheadCycles = 0;
};

} // namespace slip

#endif // SLIPSTREAM_DETECT_DETECT_PARAMS_HH
