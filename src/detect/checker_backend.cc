#include "detect/checker_backend.hh"

#include "assembler/program.hh"
#include "func/executor.hh"
#include "isa/regnames.hh"

namespace slip
{

CheckerBackend::CheckerBackend(const DetectParams &params,
                               const Program &program,
                               FaultInjector &injector)
    : DetectionBackend(injector), program_(program),
      bandwidth_(params.checkerBandwidth ? params.checkerBandwidth : 1),
      queue_(params.checkerQueue ? params.checkerQueue : 1),
      checker_(feed_)
{
    checker_.setPc(program_.entry());
    checker_.writeReg(reg::sp, layout::kStackTop);
}

void
CheckerBackend::onRetire(const DynInst &d, Cycle now)
{
    // Claim the next free checker slot; the validation verdict lands
    // at `done`, which is when any mismatch becomes architectural
    // knowledge (checker lag == detection latency). The leader's
    // effective clock includes every stall already charged: a full
    // queue delays the leader, which spaces out later retires, so
    // the backlog stays pinned near the queue depth instead of
    // compounding.
    const Cycle vnow = now + stats_.overheadCycles;
    const uint64_t nowUnits = vnow * uint64_t(bandwidth_);
    busyUntilUnits_ =
        (busyUntilUnits_ > nowUnits ? busyUntilUnits_ : nowUnits) + 1;
    const Cycle done =
        (busyUntilUnits_ + bandwidth_ - 1) / bandwidth_;
    const uint64_t backlog = done > vnow ? done - vnow : 0;
    if (backlog > queue_)
        stats_.overheadCycles += backlog - queue_; // leader stalled

    feed_.feedValue = d.exec.loadedValue;
    feed_.sawStore = false;
    checker_.setPc(d.pc);
    const ExecResult got =
        executeMicro(checker_, program_.microAt(d.pc), nullptr);
    ++stats_.checked;

    bool mismatch = got.nextPc != d.exec.nextPc;
    if (got.wroteReg != d.exec.wroteReg ||
        (got.wroteReg && (got.destReg != d.exec.destReg ||
                          got.destValue != d.exec.destValue))) {
        mismatch = true;
    }
    // The access address is a register *use* even for loads (whose
    // value the checker takes on trust): a corrupt address register
    // must surface here or never.
    if (got.isMem != d.exec.isMem ||
        (got.isMem && (got.memAddr != d.exec.memAddr ||
                       got.memBytes != d.exec.memBytes))) {
        mismatch = true;
    }
    const bool leaderStored = d.exec.isMem && !d.exec.wroteReg;
    if (feed_.sawStore != leaderStored ||
        (feed_.sawStore && (feed_.sawAddr != d.exec.memAddr ||
                            feed_.sawBytes != d.exec.memBytes ||
                            feed_.sawValue != d.exec.storeValue))) {
        mismatch = true;
    }
    if (!mismatch)
        return;

    reportMismatch(done);

    // Adopt the leader's retirement values so a single corruption
    // front costs one mismatch, then keep checking downstream.
    if (d.exec.wroteReg)
        checker_.writeReg(d.exec.destReg, d.exec.destValue);
}

void
CheckerBackend::onSuspicion(Cycle)
{
    // Recoveries repair the A-stream, not the retired stream the
    // checker follows; nothing to do.
}

void
CheckerBackend::onDegrade(const ArchState &resume, const Memory &,
                          Cycle)
{
    // The degrade flush opened a retired-stream gap; rejoin the
    // leader at its authoritative register state. The checker clock
    // keeps running — its backlog is real work already accepted.
    checker_.copyRegsFrom(resume);
    checker_.setPc(resume.pc());
}

void
CheckerBackend::finish(Cycle now)
{
    // Drain lag: validations still in flight past the (stall-
    // adjusted) end of run.
    const Cycle vnow = now + stats_.overheadCycles;
    const Cycle drained =
        (busyUntilUnits_ + bandwidth_ - 1) / bandwidth_;
    if (drained > vnow)
        stats_.overheadCycles += drained - vnow;
}

} // namespace slip
