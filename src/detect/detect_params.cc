#include "detect/detect_params.hh"

#include "common/env.hh"
#include "common/logging.hh"

namespace slip
{

namespace
{

constexpr const char *kBackendNames[kNumDetectBackends] = {
    "slipstream",
    "replay",
    "checker",
};

} // namespace

const char *
detectBackendName(DetectBackendKind kind)
{
    const auto i = unsigned(kind);
    return i < kNumDetectBackends ? kBackendNames[i] : "?";
}

bool
parseDetectBackend(const std::string &text, DetectBackendKind &out)
{
    for (unsigned i = 0; i < kNumDetectBackends; ++i) {
        if (text == kBackendNames[i]) {
            out = DetectBackendKind(i);
            return true;
        }
    }
    return false;
}

DetectBackendKind
detectBackendFromEnv(DetectBackendKind fallback)
{
    return DetectBackendKind(envChoice(
        "SLIPSTREAM_DETECT", {"slipstream", "replay", "checker"},
        size_t(fallback)));
}

DetectParams
detectParamsFromEnv(DetectParams base)
{
    DetectParams p = base;
    p.kind = detectBackendFromEnv(base.kind);
    p.replayWindow = envU64("SLIPSTREAM_REPLAY_WINDOW", base.replayWindow);
    if (p.replayWindow == 0) {
        SLIP_WARN("ignoring SLIPSTREAM_REPLAY_WINDOW=0 (a zero-length "
                  "replay window cannot check anything); using ",
                  base.replayWindow ? base.replayWindow : 256);
        p.replayWindow = base.replayWindow ? base.replayWindow : 256;
    }
    const uint64_t bw =
        envU64("SLIPSTREAM_CHECKER_BANDWIDTH", base.checkerBandwidth);
    if (bw == 0) {
        SLIP_WARN("ignoring SLIPSTREAM_CHECKER_BANDWIDTH=0 (a checker "
                  "that validates nothing per cycle never drains); "
                  "using ",
                  base.checkerBandwidth ? base.checkerBandwidth : 2);
        p.checkerBandwidth =
            base.checkerBandwidth ? base.checkerBandwidth : 2;
    } else {
        p.checkerBandwidth = unsigned(bw);
    }
    return p;
}

} // namespace slip
