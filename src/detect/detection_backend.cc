#include "detect/detection_backend.hh"

#include "detect/checker_backend.hh"
#include "detect/replay_backend.hh"
#include "slipstream/fault_injector.hh"

namespace slip
{

void
DetectionBackend::reportMismatch(Cycle now)
{
    ++stats_.mismatches;
    stats_.externalDetections += injector_->onExternalDetection(now);
}

namespace
{

/**
 * The paper's native mechanism, already implemented inside the
 * slipstream core (R-stream vs. delay buffer): this backend just
 * keeps the books so the shootout compares like with like. Checked
 * work is the redundantly executed (value-predicted) fraction;
 * mismatches are the recoveries the comparison triggered; overhead
 * is zero by construction — detection shares the R-stream's
 * pipeline.
 */
class SlipstreamBackend : public DetectionBackend
{
  public:
    explicit SlipstreamBackend(FaultInjector &injector)
        : DetectionBackend(injector)
    {}

    DetectBackendKind
    kind() const override
    {
        return DetectBackendKind::Slipstream;
    }

    void
    onRetire(const DynInst &d, Cycle) override
    {
        if (d.valuePredicted)
            ++stats_.checked;
        if (d.triggersRecovery)
            ++stats_.mismatches;
    }

    void onSuspicion(Cycle) override {}
    void onDegrade(const ArchState &, const Memory &, Cycle) override {}
    void finish(Cycle) override {}
};

} // namespace

std::unique_ptr<DetectionBackend>
makeDetectionBackend(const DetectParams &params, const Program &program,
                     FaultInjector &injector)
{
    switch (params.kind) {
      case DetectBackendKind::Replay:
        return std::make_unique<ReplayBackend>(params, program,
                                               injector);
      case DetectBackendKind::Checker:
        return std::make_unique<CheckerBackend>(params, program,
                                                injector);
      case DetectBackendKind::Slipstream:
      default:
        return std::make_unique<SlipstreamBackend>(injector);
    }
}

} // namespace slip
