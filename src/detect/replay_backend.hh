/**
 * @file
 * Replay-based detection (RepTFD-style). The retired instruction
 * stream is buffered in windows and re-executed on the functional
 * fast path (executeMicro) against a rolling shadow register file and
 * shadow memory image. Silent architectural corruption — a
 * non-redundant R-pipeline fault or a flipped memory cell — shows up
 * the first time a dependent instruction's retired result disagrees
 * with the clean shadow recomputation.
 *
 * Windows flush when full, on every suspicion trigger (recovery of
 * any cause, including the forced watchdog recovery), and at end of
 * run. Replay cost is modeled as ceil(window / replayWidth) cycles
 * per flush and charged to DetectStats::overheadCycles.
 */

#ifndef SLIPSTREAM_DETECT_REPLAY_BACKEND_HH
#define SLIPSTREAM_DETECT_REPLAY_BACKEND_HH

#include <vector>

#include "detect/detection_backend.hh"
#include "func/arch_state.hh"
#include "mem/memory.hh"

namespace slip
{

class Program;

class ReplayBackend : public DetectionBackend
{
  public:
    ReplayBackend(const DetectParams &params, const Program &program,
                  FaultInjector &injector);

    DetectBackendKind kind() const override
    {
        return DetectBackendKind::Replay;
    }

    void onRetire(const DynInst &d, Cycle now) override;
    void onSuspicion(Cycle now) override;
    void onDegrade(const ArchState &resume, const Memory &mem,
                   Cycle now) override;
    void finish(Cycle now) override;

  private:
    struct Entry
    {
        Addr pc = 0;
        ExecResult exec; // what the leader retired
    };

    void flushWindow(Cycle now);
    void replayOne(const Entry &e, Cycle now);

    const Program &program_;
    uint64_t window_;
    unsigned width_;

    Memory shadowMem_;
    DirectMemPort port_;
    ArchState shadow_;
    std::vector<Entry> pending_;
};

} // namespace slip

#endif // SLIPSTREAM_DETECT_REPLAY_BACKEND_HH
