/**
 * @file
 * The DetectionBackend interface: error detection factored out of the
 * slipstream core so rival architectures can ride the same processor,
 * the same 8-target FaultInjector and the same campaign harness.
 *
 * A backend is an *observer* of the retired instruction stream — it
 * detects corruption but never repairs it (repair stays with the
 * slipstream recovery controller). The processor drives four hooks:
 *
 *   onRetire    every architecturally retired instruction, in program
 *               order, with the functional ExecResult it retired with
 *   onSuspicion a recovery fired (IR-misprediction, fault comparison
 *               trip, or watchdog) — replay-style backends use this
 *               to flush their window early
 *   onDegrade   the processor fell back to R-only mode and flushed
 *               walked-but-unretired instructions whose architectural
 *               effects are already applied; the retired stream has a
 *               gap, so backends must resync from the authoritative
 *               state snapshot passed in
 *   finish      end of run — drain buffered work so late mismatches
 *               still count
 *
 * Mismatches found by a backend are pushed back into the injector
 * (FaultInjector::onExternalDetection) so per-backend coverage and
 * detection-latency histograms fall out of the existing campaign
 * bookkeeping unchanged.
 */

#ifndef SLIPSTREAM_DETECT_DETECTION_BACKEND_HH
#define SLIPSTREAM_DETECT_DETECTION_BACKEND_HH

#include <memory>

#include "detect/detect_params.hh"
#include "uarch/core.hh"

namespace slip
{

class ArchState;
class FaultInjector;
class Memory;
class Program;

/** One error-detection architecture observing a slipstream run. */
class DetectionBackend
{
  public:
    explicit DetectionBackend(FaultInjector &injector)
        : injector_(&injector)
    {}
    virtual ~DetectionBackend() = default;

    virtual DetectBackendKind kind() const = 0;

    /** One instruction retired architecturally at cycle `now`. */
    virtual void onRetire(const DynInst &d, Cycle now) = 0;

    /** A recovery (any trigger) completed at cycle `now`. */
    virtual void onSuspicion(Cycle now) = 0;

    /**
     * The processor degraded to R-only mode at cycle `now`, creating
     * a retired-stream gap; `resume`/`mem` are the authoritative
     * register file and memory image to resync from.
     */
    virtual void onDegrade(const ArchState &resume, const Memory &mem,
                           Cycle now) = 0;

    /** End of run at cycle `now`: drain any buffered validation. */
    virtual void finish(Cycle now) = 0;

    const DetectStats &stats() const { return stats_; }

  protected:
    /**
     * Record a mismatch observed at cycle `now`: bumps the raw
     * counter and asks the injector to mark any live R-visible fault
     * records as externally detected (stamping detection latency).
     */
    void reportMismatch(Cycle now);

    DetectStats stats_;

  private:
    FaultInjector *injector_;
};

/**
 * Build the backend `params.kind` names. `program` backs the shadow
 * contexts of the replay and checker backends; the slipstream
 * passthrough ignores it.
 */
std::unique_ptr<DetectionBackend> makeDetectionBackend(
    const DetectParams &params, const Program &program,
    FaultInjector &injector);

} // namespace slip

#endif // SLIPSTREAM_DETECT_DETECTION_BACKEND_HH
