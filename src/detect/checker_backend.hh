/**
 * @file
 * Checker-core detection (MEEK-style). A simplified in-order checker
 * with its own register file re-executes every retired leader
 * instruction, fed the leader's load values through the delay-buffer
 * path (a MemPort that returns the leader's loadedValue and captures
 * stores for comparison instead of writing real memory).
 *
 * Trusting leader loads keeps the checker tiny — no shadow memory —
 * at a deliberate coverage cost: corruption of the memory image
 * itself (MemoryCell) passes through unchallenged, exactly the hole
 * MEEK leaves to ECC. Register-file corruption that silently retires
 * (non-redundant R-pipeline faults) is caught at the first use.
 *
 * Timing: the checker validates `checkerBandwidth` instructions per
 * cycle. Each retired instruction occupies the next free checker
 * slot; its mismatch (if any) is reported at the slot's completion
 * cycle, so checker lag shows up as detection latency. When the
 * backlog exceeds `checkerQueue` slots the leader is modeled as
 * stalled for the excess — charged to DetectStats::overheadCycles.
 */

#ifndef SLIPSTREAM_DETECT_CHECKER_BACKEND_HH
#define SLIPSTREAM_DETECT_CHECKER_BACKEND_HH

#include "detect/detection_backend.hh"
#include "func/arch_state.hh"

namespace slip
{

class Program;

class CheckerBackend : public DetectionBackend
{
  public:
    CheckerBackend(const DetectParams &params, const Program &program,
                   FaultInjector &injector);

    DetectBackendKind kind() const override
    {
        return DetectBackendKind::Checker;
    }

    void onRetire(const DynInst &d, Cycle now) override;
    void onSuspicion(Cycle now) override;
    void onDegrade(const ArchState &resume, const Memory &mem,
                   Cycle now) override;
    void finish(Cycle now) override;

  private:
    /**
     * The checker's operand feed: loads return what the leader
     * loaded; stores are captured for comparison and go nowhere.
     */
    class FeedPort : public MemPort
    {
      public:
        uint64_t
        read(Addr, unsigned) override
        {
            return feedValue;
        }

        void
        write(Addr addr, unsigned bytes, uint64_t value) override
        {
            sawStore = true;
            sawAddr = addr;
            sawBytes = bytes;
            sawValue = value;
        }

        Word feedValue = 0;
        bool sawStore = false;
        Addr sawAddr = 0;
        unsigned sawBytes = 0;
        Word sawValue = 0;
    };

    const Program &program_;
    unsigned bandwidth_;
    unsigned queue_;

    FeedPort feed_;
    ArchState checker_;

    /** Checker clock in 1/bandwidth sub-cycle units. */
    uint64_t busyUntilUnits_ = 0;
};

} // namespace slip

#endif // SLIPSTREAM_DETECT_CHECKER_BACKEND_HH
