/**
 * @file
 * Transient-fault injection (paper §3, Figure 5), grown into a
 * campaign-grade subsystem: multiple faults per run, targets across
 * every structure the slipstream fault argument touches, and per-fault
 * detection-latency bookkeeping.
 *
 * Injection targets:
 *
 *  - AStream:   the A-stream copy of a redundantly executed
 *               instruction's result. The corrupted value reaches the
 *               delay buffer (and the A context); the R-stream's
 *               redundant computation disagrees -> detected as a
 *               "misprediction", recovered from R-stream state
 *               (scenario #1, A-side).
 *  - RPipeline: the R-stream copy *in the pipeline* (before
 *               architectural state). Redundantly executed -> the
 *               comparison disagrees -> detected and squashed
 *               (scenario #1, R-side). Skipped in the A-stream ->
 *               nothing to compare against and the corrupted value
 *               silently retires (scenario #2).
 *  - DelayBufferValue:  a communicated value payload corrupted *in
 *               transit* between the cores (after A computed it,
 *               before R compares): dest value, memory address, or
 *               branch outcome of an executed slot. Always compared,
 *               so always detectable.
 *  - DelayBufferBranch: a communicated branch outcome flipped in
 *               transit — the executed slot's taken bit, or a removed
 *               branch's presumed path direction.
 *  - IRPredictor: a bit of the predictor's SRAM — the confidence
 *               counter (bits 0-7) or the stored ir-vec (bits 8+) of
 *               the entry the A-stream is about to consult. A wrong
 *               removal plan corrupts the A-stream only; the
 *               IR-detector/R-stream checks expose it.
 *  - ARegister: one bit of an A-stream architectural register (plan
 *               field `reg` picks which). Pure A-context corruption:
 *               healed by any subsequent recovery.
 *  - MemoryCell: one bit of an 8-byte cell of the *authoritative*
 *               memory image, at the address of a load/store reaching
 *               the plan's index. Both streams read the corrupted
 *               cell, so slipstream redundancy cannot see it — the
 *               paper leaves main memory to ECC, and this target
 *               quantifies exactly that hole.
 *  - AStreamStall: the A-stream front end wedges permanently (models
 *               a fault derailing A control flow into a livelock).
 *               Only the processor's forward-progress watchdog can
 *               expose it; the forced recovery heals it.
 *
 * Dynamic indices address the R-stream's walk order for R-side
 * targets and the A-stream's walk order for A-side targets, so
 * campaigns are reproducible. Targets with data-dependent trigger
 * conditions (DelayBufferBranch, MemoryCell) fire at the first
 * eligible instruction at or after the planned index.
 */

#ifndef SLIPSTREAM_SLIPSTREAM_FAULT_INJECTOR_HH
#define SLIPSTREAM_SLIPSTREAM_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"

namespace slip
{

/** Where the flipped bit lands. */
enum class FaultTarget : uint8_t
{
    AStream,           // the A-stream's copy of the instruction
    RPipeline,         // the R-stream's copy, pre-architectural-state
    DelayBufferValue,  // value payload corrupted between the cores
    DelayBufferBranch, // branch outcome corrupted between the cores
    IRPredictor,       // predictor confidence/ir-vec state bit
    ARegister,         // A-stream architectural register bit
    MemoryCell,        // raw cell of the authoritative memory image
    AStreamStall,      // A-stream front end wedges (watchdog territory)
};

/** "a_stream", "r_pipeline", ... (report keys). */
const char *faultTargetName(FaultTarget target);

/** A single planned transient fault. */
struct FaultPlan
{
    FaultTarget target = FaultTarget::RPipeline;
    uint64_t dynIndex = 0; // dynamic instruction index (see file doc)
    unsigned bit = 0;      // which bit flips (0..63)
    RegIndex reg = 0;      // ARegister only: victim register

    /** Flip the planned bit in a value. */
    Word
    flip(Word value) const
    {
        return value ^ (Word(1) << (bit & 63));
    }
};

/** One planned fault's life story (filled in during the run). */
struct FaultRecord
{
    FaultPlan plan;
    bool fired = false;    // an eligible injection point was reached
    bool injected = false; // a physical victim existed and was hit
    bool targetWasRedundant = false; // victim executed in both streams
    bool detected = false; // exposed by a comparison (or forced
                           // recovery for A-side state faults)
    Addr pc = 0;           // victim instruction / trace start
    Cycle injectCycle = 0; // when the bit flipped
    Cycle detectCycle = 0; // when the repairing recovery ran

    /** Cycles from injection to the repairing recovery. */
    Cycle
    detectionLatency() const
    {
        return detected && detectCycle >= injectCycle
                   ? detectCycle - injectCycle
                   : 0;
    }
};

/**
 * What the campaign actually did. The legacy single-fault fields
 * summarize the whole plan list (injected = any fault landed,
 * detected = every landed fault was detected) so existing callers
 * keep their semantics; `records` has the per-fault story.
 */
struct FaultOutcome
{
    bool injected = false;
    bool targetWasRedundant = false; // first injected fault's
    bool detected = false;
    Addr pc = 0; // first injected fault's victim

    unsigned planned = 0;
    unsigned numInjected = 0;
    unsigned numDetected = 0;
    std::vector<FaultRecord> records;
};

/**
 * The index spaces injection sites live in. Each FaultTarget belongs
 * to exactly one point; sites call fire() with their running index.
 */
enum class InjectPoint : uint8_t
{
    RSlot,       // per R-stream walked instruction
    ASlot,       // per A-stream executed slot
    ATraceStart, // per A-stream trace-walk start
};

/**
 * Injection bookkeeping shared with the stream walkers. Arm one plan
 * (the legacy single-event-upset interface) or a whole list; the
 * walkers poll fire() at each site and apply whatever it returns.
 */
class FaultInjector
{
  public:
    FaultInjector() = default;

    /** Arm one fault for the coming run (replaces any prior plan). */
    void arm(const FaultPlan &plan);

    /** Arm a multi-fault plan list for the coming run. */
    void arm(const std::vector<FaultPlan> &plans);

    bool armed() const { return firedCount_ < outcome_.records.size(); }

    /** Simulation clock, for latency stamping. Call once per cycle. */
    void setNow(Cycle now) { now_ = now; }

    /**
     * Poll one injection site: returns the next un-fired record whose
     * plan is eligible at (point, index), marked fired and stamped
     * with the injection cycle — or nullptr. Call in a loop: several
     * plans may name the same site. The caller applies the corruption
     * and fills injected/targetWasRedundant/pc.
     */
    FaultRecord *fire(InjectPoint point, uint64_t index,
                      const StaticInst *si = nullptr);

    /**
     * A recovery completed: stamp detection latency for detected
     * faults awaiting repair, and count outstanding A-side state
     * faults (ARegister, IRPredictor, AStreamStall) as detected —
     * recovery resynchronizes the whole A context from the R-stream,
     * which genuinely heals them whatever triggered it.
     */
    void onRecovery(Cycle now);

    /**
     * An external detection backend (replay / checker-core) observed
     * a retirement-state mismatch at `now`. Marks live fault records
     * the slipstream sphere itself cannot see — the silently-retiring
     * targets (non-redundant RPipeline, MemoryCell) — as detected and
     * stamps their latency. Returns how many records were newly
     * marked, so backends can count genuine coverage rather than raw
     * mismatch events.
     */
    unsigned onExternalDetection(Cycle now);

    /** Aggregate + per-fault outcomes (aggregates recomputed). */
    const FaultOutcome &outcome();

  private:
    bool eligible(const FaultPlan &plan, InjectPoint point,
                  uint64_t index, const StaticInst *si) const;
    void refreshGate(InjectPoint point);

    FaultOutcome outcome_;
    size_t firedCount_ = 0;
    Cycle now_ = 0;

    /** Per-point fast gate: smallest un-fired dynIndex (hot path). */
    uint64_t gate_[3] = {UINT64_MAX, UINT64_MAX, UINT64_MAX};
};

} // namespace slip

#endif // SLIPSTREAM_SLIPSTREAM_FAULT_INJECTOR_HH
