/**
 * @file
 * Transient-fault injection (paper §3, Figure 5).
 *
 * Models a single-event upset that flips one bit of one dynamic
 * instruction's result value. Three injection targets cover the
 * paper's scenarios:
 *
 *  - AStream:   the fault hits the A-stream copy of a redundantly
 *               executed instruction. The corrupted value reaches the
 *               delay buffer (and the A context); the R-stream's
 *               redundant computation disagrees -> detected as a
 *               "misprediction", recovered from R-stream state
 *               (scenario #1, A-side).
 *  - RPipeline: the fault hits the R-stream copy *in the pipeline*
 *               (before architectural state). If the instruction was
 *               redundantly executed, the comparison disagrees ->
 *               detected and squashed; architectural state is written
 *               by the re-execution (scenario #1, R-side). If the
 *               A-stream had skipped the instruction there is nothing
 *               to compare against and the corrupted value silently
 *               retires (scenario #2).
 *
 * The injector addresses instructions by their dynamic index in the
 * R-stream's retired order, so campaigns are reproducible.
 */

#ifndef SLIPSTREAM_SLIPSTREAM_FAULT_INJECTOR_HH
#define SLIPSTREAM_SLIPSTREAM_FAULT_INJECTOR_HH

#include <cstdint>
#include <optional>

#include "common/types.hh"

namespace slip
{

/** Where the flipped bit lands. */
enum class FaultTarget : uint8_t
{
    AStream,   // the A-stream's copy of the instruction
    RPipeline, // the R-stream's copy, pre-architectural-state
};

/** A single planned transient fault. */
struct FaultPlan
{
    FaultTarget target = FaultTarget::RPipeline;
    uint64_t dynIndex = 0; // R-stream dynamic instruction index
    unsigned bit = 0;      // which result bit flips (0..63)
};

/** What the fault actually did (filled in during the run). */
struct FaultOutcome
{
    bool injected = false;        // the indexed instruction existed
    bool targetWasRedundant = false; // instruction executed in both
    bool detected = false;        // triggered a recovery
    Addr pc = 0;                  // victim instruction
};

/** Injection bookkeeping shared with the R-stream walker. */
class FaultInjector
{
  public:
    FaultInjector() = default;

    /** Arm one fault for the coming run. */
    void arm(const FaultPlan &plan);

    bool armed() const { return plan_.has_value(); }
    const FaultPlan &plan() const { return *plan_; }

    /**
     * Should the instruction with this dynamic index be corrupted?
     * Consumes the plan (single-fault model).
     */
    bool fires(uint64_t dynIndex);

    /** Flip the planned bit in a value. */
    Word
    corrupt(Word value) const
    {
        return value ^ (Word(1) << (firedPlan.bit & 63));
    }

    /** Target of the fault that just fired (valid after fires()). */
    FaultTarget firedTarget() const { return firedPlan.target; }

    FaultOutcome &outcome() { return outcome_; }
    const FaultOutcome &outcome() const { return outcome_; }

  private:
    std::optional<FaultPlan> plan_;
    FaultPlan firedPlan;
    FaultOutcome outcome_;
};

} // namespace slip

#endif // SLIPSTREAM_SLIPSTREAM_FAULT_INJECTOR_HH
