#include "slipstream/rdfg.hh"

#include "common/logging.hh"

namespace slip
{

Rdfg::Rdfg(unsigned numSlots)
    : nodes(numSlots)
{
}

void
Rdfg::setRemovable(unsigned slot, bool removable)
{
    SLIP_ASSERT(slot < nodes.size(), "rdfg slot ", slot, " out of range");
    nodes[slot].removable = removable;
}

void
Rdfg::addEdge(unsigned producer, unsigned consumer)
{
    SLIP_ASSERT(producer < nodes.size() && consumer < nodes.size(),
                "rdfg edge out of range");
    SLIP_ASSERT(producer != consumer, "rdfg self edge at slot ", producer);
    Node &p = nodes[producer];
    ++p.consumers;
    nodes[consumer].producers.push_back(
        static_cast<uint16_t>(producer));
    // If the consumer is already selected (e.g. a branch selected at
    // merge reads an operand — impossible in practice since edges are
    // added before selection, but keep the invariant robust).
    if (nodes[consumer].selected) {
        ++p.selectedConsumers;
        p.inheritedReasons |= nodes[consumer].reasons;
        tryPropagate(producer);
    }
}

void
Rdfg::markExternalConsumer(unsigned producer)
{
    SLIP_ASSERT(producer < nodes.size(), "rdfg slot out of range");
    nodes[producer].externalConsumer = true;
}

void
Rdfg::select(unsigned slot, uint8_t reasons)
{
    SLIP_ASSERT(slot < nodes.size(), "rdfg slot ", slot, " out of range");
    Node &n = nodes[slot];
    if (!n.removable)
        return;
    if (n.selected) {
        n.reasons |= reasons;
        return;
    }
    n.selected = true;
    n.reasons |= reasons;

    // Back-propagate: each producer gains one selected consumer.
    for (uint16_t p : n.producers) {
        Node &prod = nodes[p];
        ++prod.selectedConsumers;
        prod.inheritedReasons |= n.reasons & ~reason::kProp;
        tryPropagate(p);
    }
}

void
Rdfg::kill(unsigned slot)
{
    SLIP_ASSERT(slot < nodes.size(), "rdfg slot ", slot, " out of range");
    nodes[slot].killed = true;
    tryPropagate(slot);
}

void
Rdfg::tryPropagate(unsigned slot)
{
    Node &n = nodes[slot];
    if (n.selected || !n.removable || !n.killed || n.externalConsumer)
        return;
    if (n.consumers == 0 || n.selectedConsumers != n.consumers)
        return;
    select(slot, static_cast<uint8_t>(reason::kProp |
                                      n.inheritedReasons));
}

uint64_t
Rdfg::irVec() const
{
    uint64_t vec = 0;
    for (size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i].selected)
            vec |= uint64_t(1) << i;
    }
    return vec;
}

std::vector<uint8_t>
Rdfg::reasonVector() const
{
    std::vector<uint8_t> reasons(nodes.size(), 0);
    for (size_t i = 0; i < nodes.size(); ++i)
        reasons[i] = nodes[i].reasons;
    return reasons;
}

} // namespace slip
