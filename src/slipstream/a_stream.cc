#include "slipstream/a_stream.hh"

#include "common/logging.hh"
#include "isa/regnames.hh"
#include "obs/trace_session.hh"

namespace slip
{

namespace
{
/** Walked-but-unpublished traces before A-stream fetch throttles. */
constexpr size_t kMaxPendingPackets = 32;
} // namespace

AStreamSource::AStreamSource(const Program &program,
                             TracePredictor &predictor,
                             IRPredictor &irPredictor,
                             RecoveryController &memPort,
                             DelayBuffer &delayBuffer,
                             AStreamPolicy &aPolicy, unsigned fetchWidth,
                             const TracePolicy &policy)
    : program(program), predictor(predictor), irPredictor(irPredictor),
      delayBuffer(delayBuffer), aPolicy(aPolicy), fetchWidth(fetchWidth),
      policy(policy), state_(memPort), stats_("a_stream")
{
    state_.setPc(program.entry());
    state_.writeReg(reg::sp, layout::kStackTop);
}

bool
AStreamSource::exhausted() const
{
    return haltWalked && blocks.empty();
}

unsigned
AStreamSource::pendingData() const
{
    unsigned total = 0;
    for (const PendingPacket &pp : pending)
        total += pp.packet.executedCount;
    return total;
}

bool
AStreamSource::canWalk() const
{
    if (pending.size() >= kMaxPendingPackets)
        return false;
    // Respect the data-flow buffer: stop running ahead once walked-
    // but-unconsumed value entries reach its capacity.
    if (pendingData() + delayBuffer.dataEntries() >=
        delayBuffer.params().dataCapacity) {
        return false;
    }
    return true;
}

bool
AStreamSource::nextBlock(FetchBlock &block)
{
    while (blocks.empty()) {
        if (haltWalked) {
            ++statStallHalted;
            return false;
        }
        if (stalled_) {
            ++statStallFault;
            return false;
        }
        if (!canWalk()) {
            ++statStallThrottled;
            return false;
        }
        walkTrace();
    }
    block = std::move(blocks.front());
    blocks.pop_front();
    return true;
}

void
AStreamSource::walkTrace()
{
    const Addr startPc = state_.pc();

    // --- front-end trace selection (same scheme as the SS model) ---
    std::optional<TraceId> pred;
    if (cachedNextPredValid) {
        pred = cachedNextPred;
        cachedNextPredValid = false;
    } else {
        pred = predictor.predict(history);
    }

    TraceId guess;
    bool usedPrediction = false;
    if (pred && pred->valid() && pred->startPc == startPc &&
        program.validPc(startPc)) {
        guess = *pred;
        usedPrediction = true;
        ++statTracesPredicted;
    } else {
        guess = buildStaticTrace(program, startPc, policy);
        ++statTracesFallback;
    }

    // --- A-side fault injection: predictor state & stall faults ---
    if (faultInjector) {
        while (FaultRecord *rec = faultInjector->fire(
                   InjectPoint::ATraceStart, walkedSlots_)) {
            rec->pc = startPc;
            if (rec->plan.target == FaultTarget::IRPredictor) {
                // Flip a bit of the entry about to be consulted; a
                // live (valid) entry is a real victim.
                rec->injected = irPredictor.corruptEntry(
                    history, guess, rec->plan.bit);
            } else { // AStreamStall
                rec->injected = true;
                stalled_ = true;
            }
        }
        if (stalled_)
            return; // the front end is wedged; watchdog territory
    }

    // --- removal plan from the A-stream policy ---
    std::optional<RemovalPlan> plan =
        aPolicy.planTrace(irPredictor, history, guess);
    if (plan)
        ++statTracesWithRemoval;

    Packet packet;
    packet.num = nextPacketNum++;
    packet.predictedIrVec = plan ? plan->irVec : 0;
    packet.actualId.startPc = startPc;
    TraceId &actual = packet.actualId;

    const unsigned lengthCap =
        std::min<unsigned>(guess.length ? guess.length : policy.maxLen,
                           policy.maxLen);

    // --- walk: execute non-removed slots on the A-stream context ---
    unsigned branchIdx = 0;
    Addr pc = startPc;
    bool truncated = false;
    bool structuralEnd = false;

    while (actual.length < lengthCap) {
        const unsigned slotIdx = actual.length;
        const uint64_t slotIndex = walkedSlots_++;
        const StaticInst &si = program.fetch(pc);

        // Defensive gating: never remove side-effecting or
        // trace-terminating instructions, whatever the plan says.
        const bool removable = !si.isHalt() && !si.isOutput() &&
                               !si.isIndirectJump();
        const bool removed =
            plan && plan->removes(slotIdx) && removable;

        PacketSlot slot;
        slot.pc = pc;
        slot.si = si;

        const bool predTaken =
            si.isCondBranch()
                ? (branchIdx < guess.numBranches
                       ? ((guess.branchBits >> branchIdx) & 1) != 0
                       : si.imm < 0)
                : false;

        if (removed) {
            slot.executedInA = false;
            slot.removalReason = plan->reasonAt(slotIdx);
            ++statSlotsRemoved;

            // The packet path presumes the prediction is correct.
            Addr nextPc = pc + kInstBytes;
            if (si.isCondBranch()) {
                ++branchIdx;
                if (predTaken) {
                    actual.branchBits |= uint64_t(1) << actual.numBranches;
                    nextPc = pc + si.imm * kInstBytes;
                }
                ++actual.numBranches;
                slot.pathTaken = predTaken;
            } else if (si.op == Opcode::JAL) {
                nextPc = pc + si.imm * kInstBytes;
                slot.pathTaken = true;
                if (si.rd == reg::ra)
                    ras.push(pc + kInstBytes);
            }
            slot.pathNextPc = nextPc;
            packet.slots.push_back(slot);
            ++actual.length;
            const Addr here = pc;
            pc = nextPc;
            // Trace boundaries must be path-consistent whether or not
            // the boundary instruction was removed.
            if (endsTraceAfter(policy, si, slot.pathTaken, here, nextPc)) {
                structuralEnd = true;
                break;
            }
            continue;
        }

        // Executed slot: real computation on the A-stream context.
        if (faultInjector) {
            while (FaultRecord *rec = faultInjector->fire(
                       InjectPoint::ASlot, slotIndex)) {
                // ARegister: flip one bit of an architectural
                // register just before this slot executes. The zero
                // register is hardwired — no victim there.
                const RegIndex r = rec->plan.reg % kNumRegs;
                rec->pc = pc;
                rec->injected = r != 0;
                state_.writeReg(r,
                                rec->plan.flip(state_.readReg(r)));
            }
        }
        state_.setPc(pc);
        const ExecResult exec =
            executeMicro(state_, program.microAt(pc), &output_);
        ++statSlotsExecuted;
        aPolicy.onSlotExecuted(si, exec);

        slot.executedInA = true;
        slot.aExec = exec;
        slot.pathTaken = exec.isControl ? exec.taken : false;
        slot.pathNextPc = exec.nextPc;

        if (si.isCondBranch()) {
            ++branchIdx;
            if (exec.taken)
                actual.branchBits |= uint64_t(1) << actual.numBranches;
            ++actual.numBranches;
            if (predTaken != exec.taken)
                truncated = true; // A-stream-detectable misprediction
        } else if (si.op == Opcode::JAL && si.rd == reg::ra) {
            ras.push(pc + kInstBytes);
        } else if (si.isIndirectJump() && si.rd == reg::ra) {
            ras.push(pc + kInstBytes);
        }

        if (endsTraceAfter(policy, si, exec.taken, pc, exec.nextPc))
            structuralEnd = true;
        if (si.isHalt()) {
            haltWalked = true;
            packet.endsWithHalt = true;
        }

        packet.slots.push_back(slot);
        ++actual.length;
        pc = exec.nextPc;

        if (truncated || structuralEnd)
            break;
    }

    SLIP_ASSERT(!packet.slots.empty(), "A-stream walked empty trace");

    // --- second pass: fetch-level realization of the removal ---
    // Removed runs >= skipRunLength are skipped pre-fetch; shorter
    // runs are fetched and dropped pre-decode (fetchOnly).
    const unsigned skipRun = irPredictor.params().skipRunLength;
    const size_t n = packet.slots.size();
    {
        size_t i = 0;
        while (i < n) {
            if (!packet.slots[i].executedInA) {
                size_t j = i;
                while (j < n && !packet.slots[j].executedInA)
                    ++j;
                if (j - i >= skipRun) {
                    for (size_t k = i; k < j; ++k)
                        packet.slots[k].fetchSkipped = true;
                    statSlotsFetchSkipped += j - i;
                }
                i = j;
            } else {
                ++i;
            }
        }
    }

    BlockSlicer slicer(fetchWidth);
    DynInst lastEmitted;
    bool anyEmitted = false;
    unsigned executedCount = 0;

    for (size_t i = 0; i < n; ++i) {
        PacketSlot &slot = packet.slots[i];
        if (slot.fetchSkipped)
            continue;

        DynInst d;
        d.pc = slot.pc;
        d.si = slot.si;
        d.packetSeq = packet.num;
        d.packetSlot = static_cast<uint8_t>(i);
        d.removalReason = slot.removalReason;

        if (!slot.executedInA) {
            d.fetchOnly = true;
            d.seq = 0; // never dispatched
        } else {
            d.seq = nextSeq++;
            d.exec = slot.aExec;
            ++executedCount;
            // The final executed conditional branch of a truncated
            // trace is the one that mispredicted.
            if (truncated && i == n - 1)
                d.mispredicted = true;
        }

        slicer.push(d, slot.pc, blocks);
        lastEmitted = d;
        anyEmitted = true;
    }
    slicer.finish(blocks);

    packet.executedCount = executedCount;

    // Policy pass over the completed packet: a runahead-family policy
    // may strip value payloads here, demoting executed slots to
    // control-only entries. A-core timing is already fixed (the fetch
    // blocks are emitted), so only the A->R communication changes;
    // `executedCount` keeps the pre-strip count because the A-core
    // will still retire those instructions.
    aPolicy.onPacketComplete(packet);

    // --- speculative history update & JALR target validation ---
    history.push(actual);

    if (!haltWalked && !truncated && anyEmitted &&
        lastEmitted.si.isIndirectJump()) {
        const Addr actualNext = pc;
        std::optional<TraceId> next = predictor.predict(history);
        Addr predictedTarget = 0;
        if (next && next->valid()) {
            predictedTarget = next->startPc;
        } else if (lastEmitted.si.rs1 == reg::ra &&
                   lastEmitted.si.rd == reg::zero) {
            predictedTarget = ras.pop();
        }
        if (predictedTarget != actualNext) {
            ++statIndirectMispredicts;
            SLIP_ASSERT(!blocks.empty() && !blocks.back().insts.empty(),
                        "A-stream indirect block missing");
            blocks.back().insts.back().mispredicted = true;
        } else if (lastEmitted.si.rs1 == reg::ra &&
                   lastEmitted.si.rd == reg::zero && next &&
                   next->valid()) {
            ras.pop();
        }
        cachedNextPred = next;
        cachedNextPredValid = true;
    }

    if (truncated)
        ++statTraceMispredicts;
    if (usedPrediction)
        ++statTracesFromPredictor;

    if (plan) {
        SLIP_TRACE(obs::Category::Removal, obs::Name::RemovalApplied,
                   obs::Phase::Instant, packet.actualId.startPc,
                   packet.slots.size() - executedCount);
    }

    // The context continues at the packet path's end.
    state_.setPc(pc);

    pending.push_back(
        PendingPacket{std::move(packet), executedCount});
}

void
AStreamSource::notifyRetire(const DynInst &d)
{
    for (PendingPacket &pp : pending) {
        if (pp.packet.num == d.packetSeq) {
            SLIP_ASSERT(pp.remainingRetires > 0,
                        "packet ", d.packetSeq, " over-retired");
            --pp.remainingRetires;
            return;
        }
    }
    // Packet already published (or dropped at recovery): fine.
}

void
AStreamSource::tryPublish()
{
    while (!pending.empty() && pending.front().remainingRetires == 0 &&
           delayBuffer.canPush(pending.front().packet.executedCount)) {
        delayBuffer.push(std::move(pending.front().packet));
        pending.pop_front();
        ++statPacketsPublished;
    }
}

void
AStreamSource::recover(Addr pc, const ArchState &rState,
                       const PathHistory &rHistory)
{
    state_.copyRegsFrom(rState);
    state_.setPc(pc);
    history.copyFrom(rHistory);
    ras.clear();
    cachedNextPredValid = false;
    blocks.clear();
    pending.clear();
    haltWalked = false;
    stalled_ = false; // a wedged front end restarts clean
    aPolicy.onRecovery();
    ++statRecoveries;
}

} // namespace slip
