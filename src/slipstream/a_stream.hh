/**
 * @file
 * The A-stream (advanced stream) fetch source: the speculatively
 * shortened program (paper §2.1).
 *
 * The A-stream fetches along IR-predictor control flow: each predicted
 * trace comes with (when confidence is saturated) an ir-vec naming the
 * instructions to remove. Removed runs of at least `skipRunLength`
 * instructions are skipped before fetch via the entry's intermediate
 * PCs (no fetch bandwidth, no I-cache access); shorter removed runs
 * are fetched and dropped before decode. Everything else executes on
 * the A-stream's own architectural context — real values, possibly
 * wrong ones once an IR-misprediction has corrupted the context.
 *
 * Non-removed conditional branches are validated by the A-stream
 * itself (conventional speculation): a wrong direction truncates the
 * trace, redirects fetch, and charges the usual penalty. Removed
 * branches are presumed to follow the predicted path.
 *
 * Every walked trace becomes a delay-buffer packet carrying the
 * complete control history and the partial (executed-only) value
 * history; packets publish to the delay buffer as their instructions
 * retire from the A-stream core.
 */

#ifndef SLIPSTREAM_SLIPSTREAM_A_STREAM_HH
#define SLIPSTREAM_SLIPSTREAM_A_STREAM_HH

#include <deque>
#include <optional>

#include "assembler/program.hh"
#include "func/arch_state.hh"
#include "slipstream/a_stream_policy.hh"
#include "slipstream/delay_buffer.hh"
#include "slipstream/fault_injector.hh"
#include "slipstream/ir_predictor.hh"
#include "slipstream/recovery_controller.hh"
#include "uarch/branch_pred.hh"
#include "uarch/fetch_source.hh"
#include "uarch/trace_pred.hh"

namespace slip
{

/** The A-stream front end + speculative context. */
class AStreamSource : public FetchSource
{
  public:
    AStreamSource(const Program &program, TracePredictor &predictor,
                  IRPredictor &irPredictor, RecoveryController &memPort,
                  DelayBuffer &delayBuffer, AStreamPolicy &aPolicy,
                  unsigned fetchWidth = 16,
                  const TracePolicy &policy = {});

    bool nextBlock(FetchBlock &block) override;
    bool exhausted() const override;

    /**
     * A-stream core retire notification: when the last instruction of
     * a walked trace retires, its packet becomes eligible for
     * publication into the delay buffer.
     */
    void notifyRetire(const DynInst &d);

    /**
     * Publication pump: pushes retired packets into the delay buffer
     * as capacity allows. Call once per cycle.
     */
    void tryPublish();

    /**
     * Recovery: restart the A-stream at the R-stream's precise point.
     * The caller has already repaired memory (recovery controller) —
     * this resynchronizes PC, registers, path history, and discards
     * all walked-but-unpublished work.
     */
    void recover(Addr pc, const ArchState &rState,
                 const PathHistory &rHistory);

    ArchState &archState() { return state_; }
    StatGroup &stats() { return stats_; }
    const std::string &output() const { return output_; }

    /** Data entries walked but not yet published (throttle input). */
    unsigned pendingData() const;

    /** Optional transient-fault injection (A-side targets). */
    FaultInjector *faultInjector = nullptr;

    /** Front end wedged by an injected stall fault (watchdog heals). */
    bool stalled() const { return stalled_; }

  private:
    struct PendingPacket
    {
        Packet packet;
        unsigned remainingRetires = 0;
    };

    void walkTrace();
    bool canWalk() const;

    const Program &program;
    TracePredictor &predictor;
    IRPredictor &irPredictor;
    DelayBuffer &delayBuffer;
    AStreamPolicy &aPolicy;
    unsigned fetchWidth;
    TracePolicy policy;

    ArchState state_;
    std::string output_;

    PathHistory history;
    ReturnAddressStack ras;
    std::optional<TraceId> cachedNextPred;
    bool cachedNextPredValid = false;

    std::deque<FetchBlock> blocks;
    std::deque<PendingPacket> pending;

    InstSeqNum nextSeq = 1;
    uint64_t nextPacketNum = 0;
    uint64_t walkedSlots_ = 0; // A-walk fault-index space
    bool haltWalked = false;
    bool stalled_ = false;

    StatGroup stats_;
    StatGroup::Handle statStallHalted{stats_.handle("stall_halted")};
    StatGroup::Handle statStallThrottled{
        stats_.handle("stall_throttled")};
    StatGroup::Handle statStallFault{stats_.handle("stall_fault")};
    StatGroup::Handle statTracesPredicted{
        stats_.handle("traces_predicted")};
    StatGroup::Handle statTracesFallback{
        stats_.handle("traces_fallback")};
    StatGroup::Handle statTracesWithRemoval{
        stats_.handle("traces_with_removal")};
    StatGroup::Handle statSlotsRemoved{stats_.handle("slots_removed")};
    StatGroup::Handle statSlotsExecuted{stats_.handle("slots_executed")};
    StatGroup::Handle statSlotsFetchSkipped{
        stats_.handle("slots_fetch_skipped")};
    StatGroup::Handle statIndirectMispredicts{
        stats_.handle("indirect_mispredicts")};
    StatGroup::Handle statTraceMispredicts{
        stats_.handle("trace_mispredicts")};
    StatGroup::Handle statTracesFromPredictor{
        stats_.handle("traces_from_predictor")};
    StatGroup::Handle statPacketsPublished{
        stats_.handle("packets_published")};
    StatGroup::Handle statRecoveries{stats_.handle("recoveries")};
};

} // namespace slip

#endif // SLIPSTREAM_SLIPSTREAM_A_STREAM_HH
