#include "slipstream/r_stream.hh"

#include "common/logging.hh"
#include "isa/regnames.hh"

namespace slip
{

void
RStreamSource::applyFault(FaultRecord &rec, PacketSlot &slot,
                          const StaticInst &si, const ExecResult &exec,
                          ExecResult &rView, Addr rPc, bool pcDiverged)
{
    const FaultPlan &plan = rec.plan;
    const bool redundant = slot.executedInA && !pcDiverged;
    rec.pc = rPc;
    switch (plan.target) {
      case FaultTarget::AStream:
        rec.injected = true;
        rec.targetWasRedundant = redundant;
        if (redundant) {
            // Corrupt the communicated (A-side) copy.
            if (slot.aExec.wroteReg) {
                slot.aExec.destValue = plan.flip(slot.aExec.destValue);
            } else if (slot.si.isStore()) {
                slot.aExec.storeValue =
                    plan.flip(slot.aExec.storeValue);
            } else if (slot.aExec.isControl) {
                slot.aExec.taken = !slot.aExec.taken;
            }
        }
        // A fault aimed at the A-stream copy of a skipped
        // instruction has no victim: nothing was executed.
        break;
      case FaultTarget::RPipeline:
        rec.injected = true;
        rec.targetWasRedundant = redundant;
        if (redundant) {
            // Corrupt only the checker's view: detection will squash
            // and re-execute, so architectural state is written clean.
            if (rView.wroteReg) {
                rView.destValue = plan.flip(rView.destValue);
            } else if (si.isStore()) {
                rView.storeValue = plan.flip(rView.storeValue);
            } else if (rView.isControl) {
                rView.taken = !rView.taken;
            }
        } else {
            // Scenario #2: nothing to compare against — the corrupted
            // value silently reaches architectural state.
            if (exec.wroteReg) {
                state_.writeReg(exec.destReg,
                                plan.flip(exec.destValue));
            } else if (si.isStore()) {
                state_.mem().write(exec.memAddr, exec.memBytes,
                                   plan.flip(exec.storeValue));
            }
        }
        break;
      case FaultTarget::DelayBufferValue:
        // A payload corrupted in transit between the cores. Only
        // executed slots put a value payload in the buffer.
        if (redundant) {
            rec.targetWasRedundant = true;
            if (slot.aExec.wroteReg) {
                rec.injected = true;
                slot.aExec.destValue = plan.flip(slot.aExec.destValue);
            } else if (slot.aExec.isMem) {
                rec.injected = true;
                slot.aExec.memAddr = plan.flip(slot.aExec.memAddr);
            } else if (slot.aExec.isControl) {
                rec.injected = true;
                slot.aExec.taken = !slot.aExec.taken;
            }
            // Slots with no value payload (nop/output/halt) carry
            // nothing to corrupt: no victim.
        }
        break;
      case FaultTarget::DelayBufferBranch:
        // A communicated branch outcome flipped in transit: the
        // executed slot's computed direction, or a removed branch's
        // presumed path direction. Eligibility guarantees si is a
        // conditional branch; on a diverged path the slot's payload
        // is already dead, so there is no victim.
        if (!pcDiverged) {
            rec.injected = true;
            rec.targetWasRedundant = slot.executedInA;
            if (slot.executedInA)
                slot.aExec.taken = !slot.aExec.taken;
            else
                slot.pathTaken = !slot.pathTaken;
        }
        break;
      case FaultTarget::MemoryCell: {
        // Flip a bit in the authoritative memory cell this access
        // touches. Both streams read the corrupted cell, so the
        // redundancy sphere cannot catch it — ECC territory the
        // paper's §3 explicitly leaves uncovered.
        const Addr cell = exec.memAddr & ~Addr(7);
        state_.mem().write(cell, 8,
                           plan.flip(state_.mem().read(cell, 8)));
        rec.injected = true;
        rec.targetWasRedundant = false;
        break;
      }
      default:
        // A-side targets never reach the RSlot injection point.
        break;
    }
}

RStreamSource::RStreamSource(const Program &program, Memory &rMem,
                             DelayBuffer &delayBuffer, unsigned fetchWidth)
    : program(program), port(rMem), state_(port),
      delayBuffer(delayBuffer), fetchWidth(fetchWidth),
      stats_("r_stream")
{
    state_.setPc(program.entry());
    state_.writeReg(reg::sp, layout::kStackTop);
}

bool
RStreamSource::exhausted() const
{
    return haltWalked && blocks.empty();
}

bool
RStreamSource::nextBlock(FetchBlock &block)
{
    while (blocks.empty()) {
        if (haltWalked || awaitingRecovery_) {
            ++(awaitingRecovery_ ? statStallRecovery
                                 : statStallHalted);
            return false;
        }
        if (delayBuffer.empty()) {
            ++statStallEmptyBuffer;
            return false;
        }
        walkPacket();
    }
    block = std::move(blocks.front());
    blocks.pop_front();
    return true;
}

bool
RStreamSource::slotMismatch(const PacketSlot &slot,
                            const ExecResult &rExec,
                            const ExecResult &aView) const
{
    if (rExec.wroteReg != aView.wroteReg)
        return true;
    if (rExec.wroteReg && rExec.destValue != aView.destValue)
        return true;
    if (slot.si.isLoad() || slot.si.isStore()) {
        if (rExec.memAddr != aView.memAddr)
            return true;
        if (slot.si.isStore() && rExec.storeValue != aView.storeValue)
            return true;
    }
    if (rExec.isControl) {
        if (rExec.taken != aView.taken)
            return true;
        if (rExec.taken && rExec.target != aView.target)
            return true;
    }
    return false;
}

void
RStreamSource::walkPacket()
{
    Packet packet = delayBuffer.pop();
    const uint64_t num = packet.num;

    PacketRecord rec;
    rec.rExec.reserve(packet.slots.size());

    BlockSlicer slicer(fetchWidth);
    bool divergence = false;

    for (size_t i = 0; i < packet.slots.size() && !divergence; ++i) {
        PacketSlot &slot = packet.slots[i];
        const Addr rPc = state_.pc();

        // Packet path disagreeing with the R-stream's own path is a
        // divergence in itself (defensive catch-all: every legitimate
        // divergence is also caught at a compared outcome).
        const bool pcDiverged = rPc != slot.pc;

        // The R-stream executes its *own* next instruction — which is
        // the slot's instruction whenever the streams agree.
        const StaticInst &si =
            pcDiverged ? program.fetch(rPc) : slot.si;
        // slot.si is the program's instruction at slot.pc == rPc, so
        // the predecoded micro-op at rPc covers both arms above.
        const ExecResult exec =
            executeMicro(state_, program.microAt(rPc), &output_);

        const uint64_t dynIndex = walked++;

        // --- transient fault injection (paper §3 + campaign targets) ---
        ExecResult rView = exec; // the value the checker sees
        FaultRecord *firedHere[kMaxCoincidentFaults];
        unsigned numFiredHere = 0;
        if (faultInjector) {
            while (numFiredHere < kMaxCoincidentFaults) {
                FaultRecord *rec =
                    faultInjector->fire(InjectPoint::RSlot, dynIndex,
                                        &si);
                if (!rec)
                    break;
                firedHere[numFiredHere++] = rec;
                applyFault(*rec, slot, si, exec, rView, rPc,
                           pcDiverged);
            }
        }

        // --- validation ---
        bool mismatch = pcDiverged;
        if (!mismatch && slot.executedInA) {
            mismatch = slotMismatch(slot, rView, slot.aExec);
        } else if (!mismatch && !slot.executedInA) {
            // Removed instructions: presumed branch outcomes must hold.
            if (si.isCondBranch() && rView.taken != slot.pathTaken)
                mismatch = true;
        }

        DynInst d;
        d.seq = nextSeq++;
        d.pc = rPc;
        d.si = si;
        d.exec = exec;
        d.valuePredicted = slot.executedInA && !pcDiverged;
        d.removalReason = slot.removalReason;
        d.packetSeq = num;
        d.packetSlot = static_cast<uint8_t>(i);
        d.triggersRecovery = mismatch;

        rec.rExec.push_back(exec);
        ++rec.emitted;

        slicer.push(d, rPc, blocks);

        if (mismatch) {
            divergence = true;
            awaitingRecovery_ = true;
            ++statDivergences;
            // A fault counts as detected only if the disagreement
            // surfaced at the faulted instruction itself; later
            // divergences caused by silently corrupted state recover
            // into the corrupted context (paper scenario #2).
            // MemoryCell faults are outside the sphere of replication
            // (both streams read the corrupted cell): a coincident
            // divergence is never *their* detection.
            for (unsigned k = 0; k < numFiredHere; ++k) {
                if (firedHere[k]->injected &&
                    firedHere[k]->plan.target != FaultTarget::MemoryCell)
                    firedHere[k]->detected = true;
            }
        }
        if (si.isHalt())
            haltWalked = true;
    }
    slicer.finish(blocks);

    rec.divergent = divergence;
    rec.packet = std::move(packet);
    records.emplace(num, std::move(rec));
    ++statPacketsWalked;
}

void
RStreamSource::notifyRetire(const DynInst &d)
{
    auto it = records.find(d.packetSeq);
    if (it == records.end())
        return;
    PacketRecord &rec = it->second;
    ++rec.retires;
    if (rec.retires < rec.emitted)
        return;
    if (!rec.divergent && onPacketRetired)
        onPacketRetired(rec.packet, rec.rExec);
    records.erase(it);
}

void
RStreamSource::recover()
{
    awaitingRecovery_ = false;
    blocks.clear();
    ++statRecoveries;
}

} // namespace slip
