#include "slipstream/r_stream.hh"

#include "common/logging.hh"
#include "isa/regnames.hh"

namespace slip
{

RStreamSource::RStreamSource(const Program &program, Memory &rMem,
                             DelayBuffer &delayBuffer, unsigned fetchWidth)
    : program(program), port(rMem), state_(port),
      delayBuffer(delayBuffer), fetchWidth(fetchWidth),
      stats_("r_stream")
{
    state_.setPc(program.entry());
    state_.writeReg(reg::sp, layout::kStackTop);
}

bool
RStreamSource::exhausted() const
{
    return haltWalked && blocks.empty();
}

bool
RStreamSource::nextBlock(FetchBlock &block)
{
    while (blocks.empty()) {
        if (haltWalked || awaitingRecovery_) {
            ++(awaitingRecovery_ ? statStallRecovery
                                 : statStallHalted);
            return false;
        }
        if (delayBuffer.empty()) {
            ++statStallEmptyBuffer;
            return false;
        }
        walkPacket();
    }
    block = std::move(blocks.front());
    blocks.pop_front();
    return true;
}

bool
RStreamSource::slotMismatch(const PacketSlot &slot,
                            const ExecResult &rExec,
                            const ExecResult &aView) const
{
    if (rExec.wroteReg != aView.wroteReg)
        return true;
    if (rExec.wroteReg && rExec.destValue != aView.destValue)
        return true;
    if (slot.si.isLoad() || slot.si.isStore()) {
        if (rExec.memAddr != aView.memAddr)
            return true;
        if (slot.si.isStore() && rExec.storeValue != aView.storeValue)
            return true;
    }
    if (rExec.isControl) {
        if (rExec.taken != aView.taken)
            return true;
        if (rExec.taken && rExec.target != aView.target)
            return true;
    }
    return false;
}

void
RStreamSource::walkPacket()
{
    Packet packet = delayBuffer.pop();
    const uint64_t num = packet.num;

    PacketRecord rec;
    rec.rExec.reserve(packet.slots.size());

    BlockSlicer slicer(fetchWidth);
    bool divergence = false;

    for (size_t i = 0; i < packet.slots.size() && !divergence; ++i) {
        PacketSlot &slot = packet.slots[i];
        const Addr rPc = state_.pc();

        // Packet path disagreeing with the R-stream's own path is a
        // divergence in itself (defensive catch-all: every legitimate
        // divergence is also caught at a compared outcome).
        const bool pcDiverged = rPc != slot.pc;

        // The R-stream executes its *own* next instruction — which is
        // the slot's instruction whenever the streams agree.
        const StaticInst &si =
            pcDiverged ? program.fetch(rPc) : slot.si;
        const ExecResult exec = execute(state_, si, &output_);

        const uint64_t dynIndex = walked++;

        // --- transient fault injection (paper §3) ---
        ExecResult rView = exec; // the value the checker sees
        bool faultFiredHere = false;
        if (faultInjector && faultInjector->fires(dynIndex)) {
            faultFiredHere = true;
            FaultOutcome &out = faultInjector->outcome();
            out.injected = true;
            out.pc = rPc;
            out.targetWasRedundant = slot.executedInA && !pcDiverged;
            if (faultInjector->firedTarget() == FaultTarget::AStream) {
                if (out.targetWasRedundant) {
                    // Corrupt the communicated (A-side) copy.
                    if (slot.aExec.wroteReg) {
                        slot.aExec.destValue =
                            faultInjector->corrupt(slot.aExec.destValue);
                    } else if (slot.si.isStore()) {
                        slot.aExec.storeValue =
                            faultInjector->corrupt(slot.aExec.storeValue);
                    } else if (slot.aExec.isControl) {
                        slot.aExec.taken = !slot.aExec.taken;
                    }
                }
                // A fault aimed at the A-stream copy of a skipped
                // instruction has no victim: nothing was executed.
            } else { // RPipeline
                if (out.targetWasRedundant) {
                    // Corrupt only the checker's view: detection will
                    // squash and re-execute, so architectural state is
                    // written clean.
                    if (rView.wroteReg) {
                        rView.destValue =
                            faultInjector->corrupt(rView.destValue);
                    } else if (si.isStore()) {
                        rView.storeValue =
                            faultInjector->corrupt(rView.storeValue);
                    } else if (rView.isControl) {
                        rView.taken = !rView.taken;
                    }
                } else {
                    // Scenario #2: nothing to compare against — the
                    // corrupted value silently reaches architectural
                    // state.
                    if (exec.wroteReg) {
                        state_.writeReg(
                            exec.destReg,
                            faultInjector->corrupt(exec.destValue));
                    } else if (si.isStore()) {
                        state_.mem().write(
                            exec.memAddr, exec.memBytes,
                            faultInjector->corrupt(exec.storeValue));
                    }
                }
            }
        }

        // --- validation ---
        bool mismatch = pcDiverged;
        if (!mismatch && slot.executedInA) {
            mismatch = slotMismatch(slot, rView, slot.aExec);
        } else if (!mismatch && !slot.executedInA) {
            // Removed instructions: presumed branch outcomes must hold.
            if (si.isCondBranch() && rView.taken != slot.pathTaken)
                mismatch = true;
        }

        DynInst d;
        d.seq = nextSeq++;
        d.pc = rPc;
        d.si = si;
        d.exec = exec;
        d.valuePredicted = slot.executedInA && !pcDiverged;
        d.removalReason = slot.removalReason;
        d.packetSeq = num;
        d.packetSlot = static_cast<uint8_t>(i);
        d.triggersRecovery = mismatch;

        rec.rExec.push_back(exec);
        ++rec.emitted;

        slicer.push(d, rPc, blocks);

        if (mismatch) {
            divergence = true;
            awaitingRecovery_ = true;
            ++statDivergences;
            // A fault counts as detected only if the disagreement
            // surfaced at the faulted instruction itself; later
            // divergences caused by silently corrupted state recover
            // into the corrupted context (paper scenario #2).
            if (faultFiredHere)
                faultInjector->outcome().detected = true;
        }
        if (si.isHalt())
            haltWalked = true;
    }
    slicer.finish(blocks);

    rec.divergent = divergence;
    rec.packet = std::move(packet);
    records.emplace(num, std::move(rec));
    ++statPacketsWalked;
}

void
RStreamSource::notifyRetire(const DynInst &d)
{
    auto it = records.find(d.packetSeq);
    if (it == records.end())
        return;
    PacketRecord &rec = it->second;
    ++rec.retires;
    if (rec.retires < rec.emitted)
        return;
    if (!rec.divergent && onPacketRetired)
        onPacketRetired(rec.packet, rec.rExec);
    records.erase(it);
}

void
RStreamSource::recover()
{
    awaitingRecovery_ = false;
    blocks.clear();
    ++statRecoveries;
}

} // namespace slip
