#include "slipstream/slipstream_processor.hh"

#include "common/invariant.hh"
#include "common/logging.hh"
#include "obs/trace_session.hh"
#include "slipstream/removal.hh"

namespace slip
{

SlipstreamProcessor::SlipstreamProcessor(const Program &program,
                                         const SlipstreamParams &params)
    : SlipstreamProcessor(program, params,
                          std::make_unique<IRPredictor>(params.irPred))
{
}

SlipstreamProcessor::SlipstreamProcessor(
    const Program &program, const SlipstreamParams &params,
    std::unique_ptr<IRPredictor> irPredictor)
    : params_(params), program(program),
      tracePred(std::make_unique<TracePredictor>(params.tracePred)),
      irPred(std::move(irPredictor)), delayBuffer_(params.delayBuffer),
      recovery_(std::make_unique<RecoveryController>(rMem,
                                                     params.recovery)),
      detector_(std::make_unique<IRDetector>(params.detector, *irPred))
{
    program.loadInto(rMem);
    aPolicy_ = makeAStreamPolicy(params_.aPolicy);
    aSource_ = std::make_unique<AStreamSource>(
        program, *tracePred, *irPred, *recovery_, delayBuffer_,
        *aPolicy_, params_.aCore.fetchWidth, params_.tracePolicy);
    rSource_ = std::make_unique<RStreamSource>(
        program, rMem, delayBuffer_, params_.rCore.fetchWidth);
    rFront_.inner = rSource_.get();
    aCore_ = std::make_unique<OoOCore>(params_.aCore, *aSource_);
    rCore_ = std::make_unique<OoOCore>(params_.rCore, rFront_);
    rSource_->faultInjector = &faultInjector_;
    aSource_->faultInjector = &faultInjector_;
    wire();
}

void
SlipstreamProcessor::wire()
{
    aCore_->onRetire = [this](const DynInst &d, Cycle) {
        aSource_->notifyRetire(d);
        return true;
    };

    rCore_->onRetire = [this](const DynInst &d, Cycle cycle) {
        rSource_->notifyRetire(d);
        if (onArchRetire)
            onArchRetire(d, cycle);

        // Recovery-controller store tracking (paper Figure 4).
        if (d.si.isStore()) {
            if (d.valuePredicted) {
                recovery_->onRStoreRetired(d.exec.memAddr,
                                           d.exec.memBytes);
            } else {
                recovery_->onSkippedStoreRetired(
                    d.packetSeq, d.exec.memAddr, d.exec.memBytes);
            }
        }

        // Removal accounting over validated (retired) instructions:
        // a single array increment, indexed by the reason mask (names
        // are derived once, when results are assembled).
        if (!d.valuePredicted) {
            ++removedSlots;
            ++removedByReasonMask_[d.removalReason &
                                   (kNumReasonMasks - 1)];
        }

        if (d.triggersRecovery) {
            recoveryRequested = true;
            // A removed conditional branch whose presumed direction
            // proved wrong corrupts the A-stream *path*, not its
            // data context computations: the removal itself was
            // sound, so its confidence survives the recovery.
            recoveryCause =
                (!d.valuePredicted && d.si.isCondBranch())
                    ? RecoveryCause::RemovedBranchMispredict
                    : RecoveryCause::CorruptContextUnknown;
        }
        return true;
    };

    rSource_->onPacketRetired = [this](const Packet &packet,
                                       const std::vector<ExecResult>
                                           &rExec) {
        const PathHistory historyBefore = trainerHistory;
        tracePred->update(trainerHistory, packet.actualId);
        trainerHistory.push(packet.actualId);
        detector_->processTrace(
            RetiredTrace{&packet, &rExec, &historyBefore});
    };

    detector_->onIRMispredict = [this](uint64_t) {
        recoveryRequested = true;
        // The detector already reset the offending entry's
        // confidence; no need to nuke everything.
        recoveryCause = RecoveryCause::CorruptContextKnown;
    };

    detector_->onTraceVerified = [this](uint64_t packetNum) {
        recovery_->onTraceVerified(packetNum);
    };
}

void
SlipstreamProcessor::doRecovery(Cycle now)
{
    recoveryRequested = false;
    ++irMispredicts;
    switch (recoveryCause) {
      case RecoveryCause::RemovedBranchMispredict:
        ++statRemovedBranchMispredict;
        break;
      case RecoveryCause::CorruptContextKnown:
        ++statIrvecCheck;
        break;
      case RecoveryCause::CorruptContextUnknown:
        ++statValueMismatch;
        break;
      case RecoveryCause::WatchdogStall:
        ++statWatchdogStall;
        break;
      case RecoveryCause::None:
        ++statUnclassified;
        break;
    }
    const RecoveryCause cause = recoveryCause;

    // Repair the A-stream memory context (functionally: collapse the
    // overlay onto the authoritative image) and charge the latency.
    const Cycle latency = recovery_->recover();
    irPenaltyTotal += latency;
    const Cycle resume = now + latency;
    SLIP_TRACE_AT(obs::Category::Recovery, obs::Name::RecoverySpan,
                  obs::Phase::Begin, now,
                  static_cast<uint64_t>(cause), latency);
    SLIP_TRACE_AT(obs::Category::Recovery, obs::Name::RecoverySpan,
                  obs::Phase::End, resume,
                  static_cast<uint64_t>(cause), latency);

    // A-stream: full flush and restart at the R-stream's precise point.
    aCore_->flush(now, resume);
    aSource_->recover(rSource_->archState().pc(), rSource_->archState(),
                      trainerHistory);

    // Postcondition (paper §2.3): recovery restores the A-stream's
    // *exact* architectural state — registers and PC equal the
    // R-stream's, and the memory overlay collapsed onto the
    // authoritative image (nothing tracked means every A read now
    // sees R memory byte-for-byte).
    SLIP_INVARIANT(recovery_->trackedAddresses() == 0,
                   "recovery left ", recovery_->trackedAddresses(),
                   " tracked addresses in the overlay/do set");
    SLIP_INVARIANT(
        aSource_->archState().regsEqual(rSource_->archState()),
        "A-stream registers differ from R-stream after recovery");
    SLIP_INVARIANT(aSource_->archState().pc() ==
                       rSource_->archState().pc(),
                   "A-stream pc ", aSource_->archState().pc(),
                   " != R-stream pc ", rSource_->archState().pc(),
                   " after recovery");

    // R-stream: its context was never wrong; older in-flight
    // instructions drain normally while fetch waits out the repair.
    rCore_->stallFetchUntil(resume);
    rSource_->recover();

    delayBuffer_.clear();
    // The IR-detector's state is NOT cleared: it reflects R-stream
    // retirement, which was never wrong. Traces still in its scope
    // finalize normally as post-recovery traces arrive, and keeping
    // the operand rename table's values preserves same-value-write
    // detection across recoveries (otherwise every recovery poisons
    // the next pass of each hot loop and confidence thrashes).
    if (params_.resetConfidenceOnRecovery &&
        (cause == RecoveryCause::CorruptContextUnknown ||
         cause == RecoveryCause::WatchdogStall)) {
        // The A-stream context was corrupted by a wrong removal whose
        // origin is unknown (or the watchdog fired blind):
        // conservatively drop all confidence so the wrong entry
        // cannot immediately re-trigger.
        irPred->reset();
    }
    recoveryCause = RecoveryCause::None;

    // Fault bookkeeping: the A context was just resynchronized.
    faultInjector_.onRecovery(now);
    if (onRecoveryEvent)
        onRecoveryEvent(now);

    // Graceful degradation: recoveries this dense mean the A-stream
    // is doing more harm than good — finish the program R-only.
    recentRecoveries_.push_back(now);
    while (!recentRecoveries_.empty() &&
           recentRecoveries_.front() + params_.degrade.windowCycles <
               now) {
        recentRecoveries_.pop_front();
    }
    if (params_.degrade.enabled && !degraded_ &&
        recentRecoveries_.size() >= params_.degrade.recoveryThreshold)
        degradeToROnly(now, resume);
}

void
SlipstreamProcessor::degradeToROnly(Cycle now, Cycle resume)
{
    degraded_ = true;
    degradedAtCycle_ = now;
    retiredAtDegrade_ = rCore_->retiredCount();
    ++statDegradeToROnly;
    SLIP_TRACE(obs::Category::Recovery, obs::Name::DegradeToROnly,
               obs::Phase::Instant, recentRecoveries_.size(),
               rCore_->retiredCount());
    SLIP_WARN("degrading to R-only execution at cycle ", now, " (",
              recentRecoveries_.size(), " recoveries in the last ",
              params_.degrade.windowCycles, " cycles)");

    // Shed the A-stream: its core and source are simply never ticked
    // again. Walked-but-unretired R work is discarded (walk-time
    // architectural effects are already in the R context, the model's
    // usual flush contract) and the R core refetches from a
    // conventional trace-predictor-driven source resumed from the
    // R-stream's precise context.
    delayBuffer_.clear();
    degradedSource_ = std::make_unique<TraceFetchSource>(
        program, *tracePred, rMem, rSource_->archState(),
        params_.rCore.fetchWidth, params_.tracePolicy);
    rFront_.inner = degradedSource_.get();
    rCore_->flush(now, resume);
    rCore_->onRetire = [this](const DynInst &d, Cycle cycle) {
        degradedSource_->notifyRetire(d);
        if (onArchRetire)
            onArchRetire(d, cycle);
        return true;
    };
    if (onDegradeEvent)
        onDegradeEvent(now);
}

SlipstreamRunResult
SlipstreamProcessor::run(Cycle maxCycles, const CancelToken *cancel)
{
    Cycle now = 0;
    Cycle lastProgress = 0;
    bool cancelled = false;

    while (!rCore_->halted() && (maxCycles == 0 || now < maxCycles)) {
        if (cancel && cancel->cancelled()) {
            cancelled = true;
            break;
        }
        faultInjector_.setNow(now);
        SLIP_TRACE_SET_CYCLE(now);
        if (!degraded_ && params_.degrade.forceAtCycle != 0 &&
            now >= params_.degrade.forceAtCycle)
            degradeToROnly(now, now);
        if (degraded_) {
            rCore_->tick(now);
            // No A-stream left: late detector callbacks are moot.
            recoveryRequested = false;
        } else {
            aCore_->tick(now);
            rCore_->tick(now);
            aSource_->tryPublish();

            if (recoveryRequested)
                doRecovery(now);
        }

        if (rCore_->lastRetireCycle() > lastProgress)
            lastProgress = rCore_->lastRetireCycle();
        if (now - lastProgress > params_.watchdog.stallCycles) {
            // Forward progress lost: a fault (or model deadlock)
            // derailed the streams. The R context is authoritative,
            // so a forced recovery restores progress for every
            // A-side derailment; give up only when trips exhaust.
            ++watchdogTrips_;
            SLIP_TRACE(obs::Category::Recovery, obs::Name::WatchdogTrip,
                       obs::Phase::Instant, watchdogTrips_,
                       now - lastProgress);
            if (degraded_ ||
                watchdogTrips_ > params_.watchdog.maxTrips) {
                SLIP_WARN("slipstream hung: R-stream idle since cycle ",
                          lastProgress, " (now ", now, ", R retired ",
                          rCore_->retiredCount(), ", trips ",
                          watchdogTrips_, ")");
                break;
            }
            recoveryRequested = false;
            recoveryCause = RecoveryCause::WatchdogStall;
            doRecovery(now);
            lastProgress = now;
        }
        ++now;
    }

    detector_->drain();

    // Summary counter so the Recovery track is never empty: short runs
    // may finish without a single recovery, and the acceptance contract
    // for traces includes recovery-category telemetry.
    SLIP_TRACE_AT(obs::Category::Recovery, obs::Name::RecoveriesTotal,
                  obs::Phase::Counter, now, irMispredicts,
                  irPenaltyTotal);

    SlipstreamRunResult result;
    result.cycles = now;
    result.rRetired = rCore_->retiredCount();
    result.aRetired = aCore_->retiredCount();
    result.output = rSource_->output();
    if (degradedSource_)
        result.output += degradedSource_->output();
    result.halted = rCore_->halted();
    result.cancelled = cancelled;
    result.hung = !result.halted && !cancelled;
    result.watchdogTrips = watchdogTrips_;
    result.degraded = degraded_;
    result.degradedAtCycle = degradedAtCycle_;
    result.rOnlyRetired =
        degraded_ ? rCore_->retiredCount() - retiredAtDegrade_ : 0;
    result.removedSlots = removedSlots;
    result.removedByReasonMask = removedByReasonMask_;
    result.removedByReason = reasonCountsByName(removedByReasonMask_);
    result.aBranchMispredicts = aCore_->branchMispredicts();
    result.irMispredicts = irMispredicts;
    result.irPenaltyTotal = irPenaltyTotal;
    result.faultOutcome = faultInjector_.outcome();
    return result;
}

} // namespace slip
