/**
 * @file
 * The instruction-removal detector (paper §2.1.2, Figure 3).
 *
 * Monitors the R-stream's retired instructions (delivered per trace /
 * packet), merges them into per-trace reverse dataflow graphs through
 * the operand rename table, and detects the three triggering
 * conditions: unreferenced writes, non-modifying writes, and branch
 * instructions. Selection status back-propagates within each trace.
 *
 * The analysis scope covers the most recent 8 traces: a trace's ir-vec
 * is finalized when the trace leaves the scope (kills can no longer
 * arrive), at which point the detector
 *   1. loads {trace-id, ir-vec} into the IR-predictor, and
 *   2. verifies the A-stream's *predicted* ir-vec against the computed
 *      one — removal of an instruction the detector cannot confirm is
 *      an IR-misprediction (the paper's "time limit" on detection,
 *      §2.3), reported through the recovery callback.
 */

#ifndef SLIPSTREAM_SLIPSTREAM_IR_DETECTOR_HH
#define SLIPSTREAM_SLIPSTREAM_IR_DETECTOR_HH

#include <deque>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "slipstream/delay_buffer.hh"
#include "slipstream/ir_predictor.hh"
#include "slipstream/operand_rename_table.hh"
#include "slipstream/rdfg.hh"

namespace slip
{

/** IR-detector configuration (paper Table 2 defaults). */
struct IRDetectorParams
{
    unsigned scopeTraces = 8;    // analysis scope (traces)
    bool removeBranches = true;  // BR trigger enabled
    bool removeWrites = true;    // WW + SV triggers enabled
};

/** One retired trace as seen by the detector: packet + R outcomes. */
struct RetiredTrace
{
    const Packet *packet = nullptr;
    const std::vector<ExecResult> *rExec = nullptr; // per slot
    const PathHistory *historyBefore = nullptr;     // path before it
};

/** The detector. */
class IRDetector
{
  public:
    IRDetector(const IRDetectorParams &params, IRPredictor &irPred);

    /**
     * Feed one fully retired trace. May finalize (evict) an older
     * trace, updating the IR-predictor and running the predicted-vs-
     * computed ir-vec check.
     */
    void processTrace(const RetiredTrace &trace);

    /** Finalize everything still in scope (end of program). */
    void drain();

    /** Clear scope and rename table (recovery). */
    void reset();

    /**
     * Invoked when a predicted ir-vec removed instructions the
     * detector cannot confirm removable (an IR-misprediction). The
     * detector has already reset the offending entry's confidence.
     */
    std::function<void(uint64_t packetNum)> onIRMispredict;

    /**
     * Invoked when a trace leaves the scope with all its removals
     * verified; the recovery controller stops tracking the trace's
     * skipped stores.
     */
    std::function<void(uint64_t packetNum)> onTraceVerified;

    StatGroup &stats() { return stats_; }
    const IRDetectorParams &params() const { return params_; }

  private:
    struct ScopedTrace
    {
        uint64_t packetNum = 0;
        TraceId id;
        PathHistory historyBefore;
        uint64_t predictedIrVec = 0;
        uint64_t storeMask = 0; // slots that are memory stores
        Rdfg rdfg;

        ScopedTrace(uint64_t num, const TraceId &id,
                    const PathHistory &history, uint64_t predicted,
                    unsigned slots)
            : packetNum(num), id(id), historyBefore(history),
              predictedIrVec(predicted), rdfg(slots)
        {}
    };

    /** Map a packet number to its in-scope trace, or nullptr. */
    ScopedTrace *findScoped(uint64_t packetNum);

    void mergeInstruction(ScopedTrace &trace, unsigned slot,
                          const PacketSlot &ps, const ExecResult &exec);

    void finalizeOldest();

    IRDetectorParams params_;
    IRPredictor &irPred;
    OperandRenameTable ort;
    std::deque<ScopedTrace> scope;
    StatGroup stats_;
    StatGroup::Handle statTracesProcessed{
        stats_.handle("traces_processed")};
    StatGroup::Handle statTriggerSv{stats_.handle("trigger_sv")};
    StatGroup::Handle statTriggerWw{stats_.handle("trigger_ww")};
    StatGroup::Handle statTriggerBr{stats_.handle("trigger_br")};
    StatGroup::Handle statInstructionsSeen{
        stats_.handle("instructions_seen")};
    StatGroup::Handle statInstructionsSelected{
        stats_.handle("instructions_selected")};
    StatGroup::Handle statIrvecMispredicts{
        stats_.handle("irvec_mispredicts")};
    StatGroup::Handle statResets{stats_.handle("resets")};
};

} // namespace slip

#endif // SLIPSTREAM_SLIPSTREAM_IR_DETECTOR_HH
