/**
 * @file
 * The slipstream processor: two cores of a chip multiprocessor running
 * redundant copies of one program (paper Figure 1).
 *
 * The A-stream core runs the shortened program under IR-predictor
 * control flow; the R-stream core runs the full program, fed control
 * and data flow outcomes through the delay buffer. The IR-detector
 * monitors the R-stream's retired instructions and teaches the
 * IR-predictor; the recovery controller repairs the A-stream context
 * from the R-stream's when an IR-misprediction (or transient fault)
 * is exposed.
 *
 * Program completion and program output are the R-stream's ("the
 * R-stream finishes just after the A-stream, so the R-stream
 * determines when the user's program is done"). IPC is computed as
 * R-stream retired instructions over total cycles, the paper's §5
 * metric.
 */

#ifndef SLIPSTREAM_SLIPSTREAM_SLIPSTREAM_PROCESSOR_HH
#define SLIPSTREAM_SLIPSTREAM_SLIPSTREAM_PROCESSOR_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "assembler/program.hh"
#include "common/cancel.hh"
#include "detect/detect_params.hh"
#include "slipstream/a_stream.hh"
#include "slipstream/a_stream_policy.hh"
#include "slipstream/removal.hh"
#include "slipstream/delay_buffer.hh"
#include "slipstream/fault_injector.hh"
#include "slipstream/ir_detector.hh"
#include "slipstream/ir_predictor.hh"
#include "slipstream/r_stream.hh"
#include "slipstream/recovery_controller.hh"
#include "uarch/core.hh"
#include "uarch/fetch_source.hh"
#include "uarch/trace_pred.hh"

namespace slip
{

/**
 * Forward-progress watchdog. A fault that derails A-stream control
 * flow (or any model deadlock) starves the R-stream of retirement;
 * after `stallCycles` idle cycles the watchdog forces a recovery —
 * the R-stream context is authoritative, so resynchronizing the
 * A-stream from it restores progress for every A-side derailment.
 * After `maxTrips` forced recoveries without reaching completion the
 * run ends with `hung` set instead of looping forever.
 */
struct WatchdogParams
{
    Cycle stallCycles = 100'000;
    unsigned maxTrips = 8;
};

/**
 * Graceful degradation to R-only execution — the paper's "slipstream
 * mode can be turned off" escape hatch, made operational. When
 * `recoveryThreshold` recoveries land within a sliding window of
 * `windowCycles`, the A-stream is doing more harm than good (a hard
 * fault, or pathologically wrong removal state): shed it and finish
 * the program on the R-stream alone as a conventional processor.
 * The defaults demand a sustained recovery storm no healthy
 * configuration produces.
 */
struct DegradeParams
{
    bool enabled = true;
    Cycle windowCycles = 4096;
    unsigned recoveryThreshold = 24;

    /**
     * Force the transition at this cycle regardless of recovery
     * density (0 = never). Differential-testing hook: the fuzz oracle
     * runs every program through the degraded R-only path too, and a
     * recovery storm cannot be arranged on demand.
     */
    Cycle forceAtCycle = 0;
};

/** Full configuration of a slipstream processor (Table 2 defaults). */
struct SlipstreamParams
{
    CoreParams aCore = [] {
        CoreParams c;
        c.name = "a_core";
        return c;
    }();
    CoreParams rCore = [] {
        CoreParams c;
        c.name = "r_core";
        return c;
    }();
    TracePredParams tracePred;
    TracePolicy tracePolicy;
    IRPredictorParams irPred;
    IRDetectorParams detector;
    DelayBufferParams delayBuffer;
    RecoveryParams recovery;
    WatchdogParams watchdog;
    DegradeParams degrade;

    /**
     * Which error-detection backend observes the run (and its
     * tuning). The processor itself always runs the native
     * delay-buffer comparison — the backend is an external observer
     * wired up by the harness (see detect/detection_backend.hh).
     */
    DetectParams detect;

    /**
     * Which A-stream shortening policy drives the walk (and its
     * tuning): the paper's IR-removal by default, or one of the
     * runahead-family strategies (slipstream/a_stream_policy.hh).
     */
    AStreamPolicyParams aPolicy;

    /**
     * Reset all removal confidence after a recovery. Avoids repeated
     * IR-mispredictions on a persistently wrong entry; forward
     * progress is guaranteed either way (the R-stream retires the
     * exposing instruction before recovery begins).
     */
    bool resetConfidenceOnRecovery = true;
};

/** Results of a slipstream run. */
struct SlipstreamRunResult
{
    Cycle cycles = 0;
    uint64_t rRetired = 0; // the program, counted once
    uint64_t aRetired = 0;
    std::string output; // R-stream (architectural) output
    bool halted = false;

    /** The run did not complete: cycle cap hit or watchdog gave up. */
    bool hung = false;
    unsigned watchdogTrips = 0; // watchdog-forced recoveries

    /** A supervisor's CancelToken ended the run early (not `hung`). */
    bool cancelled = false;

    bool degraded = false;      // shed the A-stream mid-run
    Cycle degradedAtCycle = 0;
    uint64_t rOnlyRetired = 0;  // retired after the transition

    uint64_t removedSlots = 0; // R-retired slots the A-stream skipped

    /** Removal tallies indexed by reason mask (the hot-path form). */
    ReasonCounts removedByReasonMask{};

    /** The same tallies under the paper's category names. */
    std::map<std::string, uint64_t> removedByReason;

    uint64_t aBranchMispredicts = 0; // A-stream-detected conventional
    uint64_t irMispredicts = 0;      // recoveries
    Cycle irPenaltyTotal = 0;        // recovery latency cycles

    FaultOutcome faultOutcome;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(rRetired) / cycles : 0.0;
    }

    double
    removedFraction() const
    {
        return rRetired ? static_cast<double>(removedSlots) / rRetired
                        : 0.0;
    }

    double
    mispPer1000() const
    {
        return rRetired ? 1000.0 *
                              static_cast<double>(aBranchMispredicts) /
                              rRetired
                        : 0.0;
    }

    double
    irMispPer1000() const
    {
        return rRetired
                   ? 1000.0 * static_cast<double>(irMispredicts) /
                         rRetired
                   : 0.0;
    }

    double
    avgIRPenalty() const
    {
        return irMispredicts ? static_cast<double>(irPenaltyTotal) /
                                   irMispredicts
                             : 0.0;
    }
};

/** The two-way CMP slipstream processor. */
class SlipstreamProcessor
{
  public:
    SlipstreamProcessor(const Program &program,
                        const SlipstreamParams &params = {});

    /**
     * Construct with a caller-provided IR-predictor (tests inject
     * adversarial removal policies to prove recovery soundness).
     */
    SlipstreamProcessor(const Program &program,
                        const SlipstreamParams &params,
                        std::unique_ptr<IRPredictor> irPredictor);

    /**
     * Run until the R-stream retires HALT (or maxCycles). When
     * `cancel` is given the cycle loop polls it and winds down
     * cleanly once it fires — the cooperative hook a supervising
     * deadline watchdog reaps a stuck trial through without killing
     * the process.
     */
    SlipstreamRunResult run(Cycle maxCycles = 0,
                            const CancelToken *cancel = nullptr);

    FaultInjector &faultInjector() { return faultInjector_; }

    /**
     * Observer of the architectural instruction stream: called for
     * every instruction the R-side core retires, in retirement order,
     * in slipstream AND degraded R-only mode alike. First-class
     * (rather than wrapping rCore().onRetire) because degradation
     * replaces the core's retire hook — an external wrapper would be
     * silently dropped at the transition. The differential oracle
     * captures the retired-store stream through this.
     */
    std::function<void(const DynInst &, Cycle)> onArchRetire;

    /**
     * Called after every completed recovery, whatever triggered it
     * (IR-misprediction, fault comparison, watchdog). Detection
     * backends treat this as a suspicion trigger.
     */
    std::function<void(Cycle)> onRecoveryEvent;

    /**
     * Called after a degrade-to-R-only transition. The degrade flush
     * discards walked-but-unretired instructions whose architectural
     * effects are already applied, so the retired stream has a gap —
     * observers must resync from archState()/rMemory().
     */
    std::function<void(Cycle)> onDegradeEvent;

    /** The authoritative memory image (all modes run/finish on it). */
    const Memory &rMemory() const { return rMem; }

    /**
     * The architectural context: the R-stream's, or the degraded
     * source's continuation of it after a transition to R-only.
     */
    const ArchState &
    archState()
    {
        return degradedSource_ ? degradedSource_->state()
                               : rSource_->archState();
    }

    // Component access for tests and instrumentation.
    OoOCore &aCore() { return *aCore_; }
    OoOCore &rCore() { return *rCore_; }
    AStreamSource &aSource() { return *aSource_; }
    RStreamSource &rSource() { return *rSource_; }
    AStreamPolicy &aPolicy() { return *aPolicy_; }
    IRPredictor &irPredictor() { return *irPred; }
    IRDetector &detector() { return *detector_; }
    DelayBuffer &delayBuffer() { return delayBuffer_; }
    RecoveryController &recoveryController() { return *recovery_; }
    TracePredictor &tracePredictor() { return *tracePred; }
    StatGroup &recoveryCauseStats() { return recoveryStats; }

    /** R-only (non-slipstream) execution after degradation. */
    bool degraded() const { return degraded_; }

  private:
    void wire();
    void doRecovery(Cycle now);
    void degradeToROnly(Cycle now, Cycle resume);

    /** Why a recovery was requested; drives confidence resetting. */
    enum class RecoveryCause : uint8_t
    {
        None,
        RemovedBranchMispredict, // paper §2.3 type 1: the removal was
                                 // sound, the trace prediction was not
        CorruptContextKnown,     // type 2 caught by the IR-detector's
                                 // ir-vec check: culprit entry known
                                 // and already reset
        CorruptContextUnknown,   // type 2 caught as an R-stream value
                                 // mismatch: origin unknown
        WatchdogStall,           // forced by the forward-progress
                                 // watchdog: cause unobservable
    };

    /**
     * Swappable front end for the R core: normally forwards to the
     * R-stream source; after degradation, to a conventional fetch
     * source resumed from the R context.
     */
    struct ForwardingSource : FetchSource
    {
        FetchSource *inner = nullptr;
        bool nextBlock(FetchBlock &b) override
        {
            return inner->nextBlock(b);
        }
        bool exhausted() const override { return inner->exhausted(); }
    };

    SlipstreamParams params_;
    const Program &program;

    Memory rMem; // the authoritative memory image
    std::unique_ptr<TracePredictor> tracePred;
    std::unique_ptr<IRPredictor> irPred;
    DelayBuffer delayBuffer_;
    std::unique_ptr<RecoveryController> recovery_;
    std::unique_ptr<IRDetector> detector_;
    std::unique_ptr<AStreamPolicy> aPolicy_;
    std::unique_ptr<AStreamSource> aSource_;
    std::unique_ptr<RStreamSource> rSource_;
    ForwardingSource rFront_;
    std::unique_ptr<TraceFetchSource> degradedSource_;
    std::unique_ptr<OoOCore> aCore_;
    std::unique_ptr<OoOCore> rCore_;

    PathHistory trainerHistory; // authoritative retired-trace path
    FaultInjector faultInjector_;

    bool recoveryRequested = false;
    RecoveryCause recoveryCause = RecoveryCause::None;
    StatGroup recoveryStats{"recovery_causes"};
    StatGroup::Handle statRemovedBranchMispredict{
        recoveryStats.handle("removed_branch_mispredict")};
    StatGroup::Handle statIrvecCheck{recoveryStats.handle("irvec_check")};
    StatGroup::Handle statValueMismatch{
        recoveryStats.handle("value_mismatch")};
    StatGroup::Handle statUnclassified{
        recoveryStats.handle("unclassified")};
    StatGroup::Handle statWatchdogStall{
        recoveryStats.handle("watchdog_stall")};
    StatGroup::Handle statDegradeToROnly{
        recoveryStats.handle("degrade_to_r_only")};
    uint64_t irMispredicts = 0;
    Cycle irPenaltyTotal = 0;
    uint64_t removedSlots = 0;
    ReasonCounts removedByReasonMask_{};

    // Watchdog + degradation state.
    unsigned watchdogTrips_ = 0;
    bool degraded_ = false;
    Cycle degradedAtCycle_ = 0;
    uint64_t retiredAtDegrade_ = 0;
    std::deque<Cycle> recentRecoveries_; // sliding-window timestamps
};

} // namespace slip

#endif // SLIPSTREAM_SLIPSTREAM_SLIPSTREAM_PROCESSOR_HH
