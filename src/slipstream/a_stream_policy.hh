/**
 * @file
 * Pluggable A-stream shortening policies (the runahead lineage).
 *
 * The paper shortens the A-stream by exactly one mechanism: the
 * IR-detector/IR-predictor removal of predicted-ineffectual
 * instructions. The runahead family of proposals shortens a leading
 * context differently — by entering a speculative mode on a
 * long-latency event and discarding the speculative results on exit —
 * and the same CMP substrate can run any of them: the A-stream walks
 * traces, the delay buffer forwards control and (optionally) data
 * outcomes, the R-stream validates whatever arrives and executes the
 * rest natively.
 *
 * A policy controls three decision points of the A-stream walk:
 *
 *  - planTrace: which slots to skip outright (the removal plan);
 *  - onSlotExecuted: observe executed slots (miss modeling, mode
 *    entry);
 *  - onPacketComplete: what the completed packet *forwards* — a
 *    policy may strip value payloads from executed slots, demoting
 *    them to control-only entries the R-stream re-executes natively.
 *
 * Stripping happens after the A-core's fetch blocks are emitted, so
 * A-side timing is untouched; only the A->R communication changes.
 * Every packet is always published (the R-stream fetches exclusively
 * from the delay buffer), and path fields survive stripping so
 * direction-only branch validation still works. Stripped slots carry
 * no value payload: the R-stream executes them natively against the
 * authoritative context, so architectural output is correct under
 * every policy.
 *
 * Four policies (selected by $SLIPSTREAM_ASTREAM_POLICY / --policy,
 * strict mode-knob contract):
 *
 *  - ir: the paper's IR-removal, unchanged (byte-identical baseline).
 *  - runahead: classic runahead. A modeled long-latency load miss
 *    enters runahead mode for `runaheadTraces` traces; packets
 *    completed in-mode forward control only (checkpoint + discard:
 *    the speculative values are never architecturally consumed).
 *  - filtered: filtered runahead. In-mode packets keep loads, the
 *    packet-local backward slices feeding their addresses, and
 *    control; everything else is stripped.
 *  - reliability: reliability-aware runahead. IR removal stays
 *    active, but *every* packet forwards control only and a recovery
 *    suspends removal for `cooldownTraces` traces — a corrupted
 *    A-stream can never poison the delay buffer with wrong values.
 */

#ifndef SLIPSTREAM_SLIPSTREAM_A_STREAM_POLICY_HH
#define SLIPSTREAM_SLIPSTREAM_A_STREAM_POLICY_HH

#include <memory>
#include <optional>
#include <string>

#include "common/stats.hh"
#include "slipstream/delay_buffer.hh"
#include "slipstream/ir_predictor.hh"

namespace slip
{

/** Which A-stream shortening strategy drives the walk. */
enum class AStreamPolicyKind : uint8_t
{
    IRRemoval,           // the paper's IR-predictor removal (default)
    Runahead,            // enter on load miss, discard values on exit
    FilteredRunahead,    // in-mode, keep only load-leading slices
    ReliabilityRunahead, // removal + control-only forwarding always
};

inline constexpr unsigned kNumAStreamPolicies = 4;

/** "ir", "runahead", "filtered", "reliability" (report keys). */
const char *aStreamPolicyName(AStreamPolicyKind kind);

/** Inverse of aStreamPolicyName; false on anything else. */
bool parseAStreamPolicy(const std::string &text,
                        AStreamPolicyKind &out);

/**
 * $SLIPSTREAM_ASTREAM_POLICY: unset/empty means `fallback`; a listed
 * name wins; anything else throws FatalError listing the valid
 * choices (the strict mode-knob contract).
 */
AStreamPolicyKind aStreamPolicyFromEnv(
    AStreamPolicyKind fallback = AStreamPolicyKind::IRRemoval);

/** Policy selection plus tuning, carried inside SlipstreamParams. */
struct AStreamPolicyParams
{
    AStreamPolicyKind kind = AStreamPolicyKind::IRRemoval;

    /** Runahead: traces spent in-mode per triggering load miss. */
    unsigned runaheadTraces = 4;

    /** Runahead: direct-mapped 64B-line tag array size (miss model). */
    unsigned missLines = 64;

    /** Reliability: post-recovery traces with removal suspended. */
    unsigned cooldownTraces = 8;
};

/**
 * `base` with the environment applied: $SLIPSTREAM_ASTREAM_POLICY
 * (strict), $SLIPSTREAM_RUNAHEAD_TRACES (numeric knob, usual
 * warn-and-fall-back contract; zero is rejected — a zero-length
 * runahead mode never shortens anything).
 */
AStreamPolicyParams aStreamPolicyParamsFromEnv(
    AStreamPolicyParams base = {});

/**
 * One A-stream's shortening strategy. Owned by the processor, driven
 * by AStreamSource at the three decision points; all state is
 * per-instance, so trials stay deterministic across worker counts.
 */
class AStreamPolicy
{
  public:
    explicit AStreamPolicy(const AStreamPolicyParams &params);
    virtual ~AStreamPolicy() = default;

    /** Removal plan for the trace about to be walked (may be none). */
    virtual std::optional<RemovalPlan>
    planTrace(const IRPredictor &irPredictor, const PathHistory &history,
              const TraceId &predicted) = 0;

    /** An A-executed slot's outcome (miss modeling, mode entry). */
    virtual void onSlotExecuted(const StaticInst &, const ExecResult &)
    {
    }

    /**
     * The walk finished a packet (fetch blocks already emitted; the
     * A-core's timing is fixed). The policy may strip value payloads;
     * it must keep packet.executedCount equal to the surviving
     * executedInA slots.
     */
    virtual void onPacketComplete(Packet &packet);

    /** The A-stream was resynchronized from the R-stream. */
    virtual void onRecovery() {}

    const AStreamPolicyParams &params() const { return params_; }
    StatGroup &stats() { return stats_; }

  protected:
    /**
     * Demote one executed slot to a control-only entry: the path
     * fields survive (direction-only branch validation), the value
     * payload does not (the R-stream executes it natively).
     */
    void stripSlot(PacketSlot &slot);

    /** Strip every executed slot of `packet` (control-only packet). */
    void stripAll(Packet &packet);

    /** Recount packet.executedCount after selective stripping. */
    static void recount(Packet &packet);

    AStreamPolicyParams params_;
    StatGroup stats_;
    StatGroup::Handle statModeEntries{stats_.handle("mode_entries")};
    StatGroup::Handle statModeTraces{stats_.handle("mode_traces")};
    StatGroup::Handle statStrippedSlots{
        stats_.handle("stripped_slots")};
    StatGroup::Handle statDataPackets{stats_.handle("data_packets")};
    StatGroup::Handle statControlOnlyPackets{
        stats_.handle("control_only_packets")};
};

/** Construct the policy `params.kind` names. */
std::unique_ptr<AStreamPolicy>
makeAStreamPolicy(const AStreamPolicyParams &params = {});

} // namespace slip

#endif // SLIPSTREAM_SLIPSTREAM_A_STREAM_POLICY_HH
