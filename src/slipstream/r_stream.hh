/**
 * @file
 * The R-stream (redundant stream) fetch source: the full program,
 * fetching along delay-buffer control flow and using communicated
 * values as predictions (paper §2.2, §2.3).
 *
 * The R-stream executes *every* instruction on the authoritative
 * memory image and validates the A-stream:
 *  - redundantly executed instructions compare values, addresses, and
 *    branch outcomes against the delay-buffer entries;
 *  - instructions the A-stream removed have their presumed branch
 *    outcomes checked against the R-stream's computed ones.
 * Any disagreement is an IR-misprediction (or a transient fault —
 * indistinguishable by design): the offending instruction is marked
 * and the slipstream processor initiates recovery when it retires.
 *
 * Timing: redundantly executed instructions issue without register-
 * dependence waits (source operands arrive from the delay buffer);
 * removed instructions wait on real dependences. R-stream fetch
 * starves when the delay buffer is empty.
 */

#ifndef SLIPSTREAM_SLIPSTREAM_R_STREAM_HH
#define SLIPSTREAM_SLIPSTREAM_R_STREAM_HH

#include <deque>
#include <functional>
#include <unordered_map>

#include "assembler/program.hh"
#include "func/arch_state.hh"
#include "mem/memory.hh"
#include "slipstream/delay_buffer.hh"
#include "slipstream/fault_injector.hh"
#include "uarch/fetch_source.hh"

namespace slip
{

/** Most coincident faults applied at one dynamic instruction. */
constexpr unsigned kMaxCoincidentFaults = 8;

/** The R-stream front end + the authoritative context. */
class RStreamSource : public FetchSource
{
  public:
    RStreamSource(const Program &program, Memory &rMem,
                  DelayBuffer &delayBuffer, unsigned fetchWidth = 16);

    bool nextBlock(FetchBlock &block) override;
    bool exhausted() const override;

    /**
     * R-stream core retire notification. Drives packet-completion
     * bookkeeping; fires onPacketRetired for fully validated traces.
     */
    void notifyRetire(const DynInst &d);

    /**
     * Resume after recovery: the R-stream context was never wrong, so
     * this only clears the divergence latch and sliced blocks.
     */
    void recover();

    /** A trace fully retired and validated (train + detect on it). */
    std::function<void(const Packet &, const std::vector<ExecResult> &)>
        onPacketRetired;

    /** Optional transient-fault injection. */
    FaultInjector *faultInjector = nullptr;

    ArchState &archState() { return state_; }
    const std::string &output() const { return output_; }
    bool awaitingRecovery() const { return awaitingRecovery_; }
    StatGroup &stats() { return stats_; }

    /** Dynamic R-stream instructions walked (fault-index space). */
    uint64_t walkedCount() const { return walked; }

  private:
    struct PacketRecord
    {
        Packet packet;
        std::vector<ExecResult> rExec;
        unsigned emitted = 0;
        unsigned retires = 0;
        bool divergent = false;
    };

    void walkPacket();

    /** Apply one fired fault plan at the current walk position. */
    void applyFault(FaultRecord &rec, PacketSlot &slot,
                    const StaticInst &si, const ExecResult &exec,
                    ExecResult &rView, Addr rPc, bool pcDiverged);

    /** Compare one redundantly executed slot; true on disagreement. */
    bool slotMismatch(const PacketSlot &slot, const ExecResult &rExec,
                      const ExecResult &aView) const;

    const Program &program;
    DirectMemPort port;
    ArchState state_;
    DelayBuffer &delayBuffer;
    unsigned fetchWidth;

    std::string output_;
    std::deque<FetchBlock> blocks;
    std::unordered_map<uint64_t, PacketRecord> records;

    InstSeqNum nextSeq = 1;
    uint64_t walked = 0;
    bool haltWalked = false;
    bool awaitingRecovery_ = false;

    StatGroup stats_;
    StatGroup::Handle statStallRecovery{stats_.handle("stall_recovery")};
    StatGroup::Handle statStallHalted{stats_.handle("stall_halted")};
    StatGroup::Handle statStallEmptyBuffer{
        stats_.handle("stall_empty_buffer")};
    StatGroup::Handle statDivergences{stats_.handle("divergences")};
    StatGroup::Handle statPacketsWalked{stats_.handle("packets_walked")};
    StatGroup::Handle statRecoveries{stats_.handle("recoveries")};
};

} // namespace slip

#endif // SLIPSTREAM_SLIPSTREAM_R_STREAM_HH
