#include "slipstream/ir_detector.hh"

#include "common/logging.hh"
#include "isa/regnames.hh"

namespace slip
{

IRDetector::IRDetector(const IRDetectorParams &params, IRPredictor &irPred)
    : params_(params), irPred(irPred), stats_("ir_detector")
{
}

IRDetector::ScopedTrace *
IRDetector::findScoped(uint64_t packetNum)
{
    for (ScopedTrace &t : scope) {
        if (t.packetNum == packetNum)
            return &t;
    }
    return nullptr;
}

namespace
{

/** Instructions that must never be removed from the A-stream. */
bool
eligibleForRemoval(const StaticInst &si)
{
    if (si.isHalt() || si.isOutput())
        return false; // irreversible side effects
    if (si.isIndirectJump())
        return false; // trace terminator; target must be computed
    if (si.isJump() && si.destReg() != kNoReg)
        return false; // link-writing jumps removed only via chains
    return true;
}

} // namespace

void
IRDetector::processTrace(const RetiredTrace &trace)
{
    const Packet &p = *trace.packet;
    SLIP_ASSERT(trace.rExec->size() == p.slots.size(),
                "retired trace result/slot size mismatch");

    SLIP_ASSERT(trace.historyBefore, "retired trace missing history");
    scope.emplace_back(p.num, p.actualId, *trace.historyBefore,
                       p.predictedIrVec,
                       static_cast<unsigned>(p.slots.size()));
    ScopedTrace &st = scope.back();

    for (unsigned slot = 0; slot < p.slots.size(); ++slot) {
        if (p.slots[slot].si.isStore())
            st.storeMask |= uint64_t(1) << slot;
        mergeInstruction(st, slot, p.slots[slot], (*trace.rExec)[slot]);
    }

    ++statTracesProcessed;

    while (scope.size() > params_.scopeTraces)
        finalizeOldest();
}

void
IRDetector::mergeInstruction(ScopedTrace &trace, unsigned slot,
                             const PacketSlot &ps, const ExecResult &exec)
{
    const StaticInst &si = ps.si;
    Rdfg &rdfg = trace.rdfg;
    const OrtProducer self{trace.packetNum, static_cast<uint8_t>(slot)};

    rdfg.setRemovable(slot, eligibleForRemoval(si));

    // --- source operands: dependence edges + ref bits ---
    const auto noteProducer = [&](const OrtProducer *prod) {
        if (!prod)
            return;
        if (prod->packetNum == trace.packetNum) {
            rdfg.addEdge(prod->slot, slot);
        } else if (ScopedTrace *other = findScoped(prod->packetNum)) {
            // Cross-trace consumer: pins the producer (back-
            // propagation never crosses a trace boundary, §2.1.3).
            other->rdfg.markExternalConsumer(prod->slot);
        }
    };

    RegIndex srcs[2];
    si.srcRegs(srcs);
    for (RegIndex s : srcs) {
        if (s != kNoReg && s != kZeroReg)
            noteProducer(ort.readReg(s));
    }
    if (si.isLoad())
        noteProducer(ort.readMem(exec.memAddr, exec.memBytes));

    // --- writes: non-modifying / unreferenced-write triggers ---
    const auto handleWrite = [&](const OrtWriteResult &w) {
        if (w.nonModifying) {
            if (params_.removeWrites) {
                rdfg.select(slot, reason::kSV);
                ++statTriggerSv;
            }
            return;
        }
        if (!w.killedValid)
            return;
        // The old producer's consumer set is complete.
        if (ScopedTrace *prodTrace = findScoped(w.killed.packetNum)) {
            if (w.killedUnreferenced && params_.removeWrites) {
                prodTrace->rdfg.select(w.killed.slot, reason::kWW);
                ++statTriggerWw;
            }
            prodTrace->rdfg.kill(w.killed.slot);
        }
    };

    if (si.isStore()) {
        // Note: a non-modifying *store* must not become the new
        // producer, which writeMem already guarantees.
        handleWrite(ort.writeMem(exec.memAddr, exec.memBytes,
                                 exec.storeValue, self));
    } else if (exec.wroteReg) {
        handleWrite(ort.writeReg(exec.destReg, exec.destValue, self));
    }

    // --- branch trigger: every branch is a removal candidate ---
    const bool brCandidate =
        si.isCondBranch() ||
        (si.isJump() && !si.isIndirectJump() && si.destReg() == kNoReg);
    if (brCandidate && params_.removeBranches) {
        rdfg.select(slot, reason::kBR);
        ++statTriggerBr;
    }
}

void
IRDetector::finalizeOldest()
{
    SLIP_ASSERT(!scope.empty(), "finalize on empty scope");
    ScopedTrace &st = scope.front();

    RemovalPlan computed;
    computed.irVec = st.rdfg.irVec();
    computed.reasons = st.rdfg.reasonVector();

    statInstructionsSeen += st.rdfg.numSlots();
    statInstructionsSelected +=
        popCount(computed.irVec);

    // A predicted-removed *store* the detector cannot confirm means
    // the A-stream may have skipped an effectual store: an
    // IR-misprediction (the paper's "time limit" on store-2 tracking,
    // §2.3). Unconfirmed register-write removals are not corruption
    // signals: a loop's final iteration legitimately leaves its
    // removed chain unkilled (the killers are in the never-executed
    // next iteration), misuse of a stale register is caught by the
    // R-stream's value comparison anyway, and the register file is
    // copied wholesale on every recovery. The differing computed
    // ir-vec still resets the entry's confidence via the update below.
    const uint64_t unconfirmed =
        st.predictedIrVec & ~computed.irVec & st.storeMask;
    if (unconfirmed != 0) {
        ++statIrvecMispredicts;
        irPred.resetEntry(st.historyBefore, st.id);
        if (onIRMispredict)
            onIRMispredict(st.packetNum);
    } else {
        if (onTraceVerified)
            onTraceVerified(st.packetNum);
    }

    irPred.update(st.historyBefore, st.id, computed);
    ort.invalidateProducer(st.packetNum);
    scope.pop_front();
}

void
IRDetector::drain()
{
    while (!scope.empty())
        finalizeOldest();
}

void
IRDetector::reset()
{
    scope.clear();
    ort.reset();
    ++statResets;
}

} // namespace slip
