#include "slipstream/fault_injector.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/trace_session.hh"

namespace slip
{

namespace
{

InjectPoint
pointOf(FaultTarget target)
{
    switch (target) {
      case FaultTarget::AStream:
      case FaultTarget::RPipeline:
      case FaultTarget::DelayBufferValue:
      case FaultTarget::DelayBufferBranch:
      case FaultTarget::MemoryCell:
        return InjectPoint::RSlot;
      case FaultTarget::ARegister:
        return InjectPoint::ASlot;
      case FaultTarget::IRPredictor:
      case FaultTarget::AStreamStall:
        return InjectPoint::ATraceStart;
    }
    SLIP_PANIC("unknown fault target ", unsigned(target));
}

} // namespace

const char *
faultTargetName(FaultTarget target)
{
    switch (target) {
      case FaultTarget::AStream:
        return "a_stream";
      case FaultTarget::RPipeline:
        return "r_pipeline";
      case FaultTarget::DelayBufferValue:
        return "delay_buffer_value";
      case FaultTarget::DelayBufferBranch:
        return "delay_buffer_branch";
      case FaultTarget::IRPredictor:
        return "ir_predictor";
      case FaultTarget::ARegister:
        return "a_register";
      case FaultTarget::MemoryCell:
        return "memory_cell";
      case FaultTarget::AStreamStall:
        return "a_stream_stall";
    }
    return "unknown";
}

void
FaultInjector::arm(const FaultPlan &plan)
{
    arm(std::vector<FaultPlan>{plan});
}

void
FaultInjector::arm(const std::vector<FaultPlan> &plans)
{
    outcome_ = FaultOutcome{};
    outcome_.planned = static_cast<unsigned>(plans.size());
    outcome_.records.reserve(plans.size());
    for (const FaultPlan &p : plans) {
        FaultRecord rec;
        rec.plan = p;
        outcome_.records.push_back(rec);
    }
    firedCount_ = 0;
    for (const InjectPoint p : {InjectPoint::RSlot, InjectPoint::ASlot,
                                InjectPoint::ATraceStart}) {
        refreshGate(p);
    }
}

bool
FaultInjector::eligible(const FaultPlan &plan, InjectPoint point,
                        uint64_t index, const StaticInst *si) const
{
    if (pointOf(plan.target) != point)
        return false;
    switch (plan.target) {
      case FaultTarget::AStream:
      case FaultTarget::RPipeline:
      case FaultTarget::DelayBufferValue:
        return index == plan.dynIndex;
      case FaultTarget::DelayBufferBranch:
        // First conditional branch at or after the planned index.
        return index >= plan.dynIndex && si && si->isCondBranch();
      case FaultTarget::MemoryCell:
        // First memory access at or after the planned index (the
        // accessed cell is the victim).
        return index >= plan.dynIndex && si &&
               (si->isLoad() || si->isStore());
      case FaultTarget::ARegister:
      case FaultTarget::IRPredictor:
      case FaultTarget::AStreamStall:
        return index >= plan.dynIndex;
    }
    return false;
}

void
FaultInjector::refreshGate(InjectPoint point)
{
    uint64_t gate = UINT64_MAX;
    for (const FaultRecord &r : outcome_.records) {
        if (!r.fired && pointOf(r.plan.target) == point)
            gate = std::min(gate, r.plan.dynIndex);
    }
    gate_[unsigned(point)] = gate;
}

FaultRecord *
FaultInjector::fire(InjectPoint point, uint64_t index,
                    const StaticInst *si)
{
    if (index < gate_[unsigned(point)])
        return nullptr;
    for (FaultRecord &r : outcome_.records) {
        if (r.fired || !eligible(r.plan, point, index, si))
            continue;
        r.fired = true;
        r.injectCycle = now_;
        ++firedCount_;
        refreshGate(point);
        // Injection opens a span; the matching End fires at detection
        // (onRecovery), so detection latency shows up as span length.
        SLIP_TRACE_AT(obs::Category::Fault, obs::Name::FaultInjected,
                      obs::Phase::Begin, now_,
                      static_cast<uint64_t>(r.plan.target),
                      r.plan.dynIndex);
        return &r;
    }
    return nullptr;
}

void
FaultInjector::onRecovery(Cycle now)
{
    for (FaultRecord &r : outcome_.records) {
        if (!r.fired || !r.injected)
            continue;
        const bool aSideState =
            r.plan.target == FaultTarget::ARegister ||
            r.plan.target == FaultTarget::IRPredictor ||
            r.plan.target == FaultTarget::AStreamStall;
        if (aSideState && !r.detected) {
            // The recovery copied the full R context over the A
            // context, healing the corruption whether or not the
            // divergence it caused was what triggered the recovery.
            r.detected = true;
        }
        if (r.detected && r.detectCycle == 0) {
            r.detectCycle = now;
            SLIP_TRACE_AT(obs::Category::Fault, obs::Name::FaultDetected,
                          obs::Phase::End, now,
                          static_cast<uint64_t>(r.plan.target),
                          r.detectCycle - r.injectCycle);
        }
    }
}

unsigned
FaultInjector::onExternalDetection(Cycle now)
{
    unsigned newly = 0;
    for (FaultRecord &r : outcome_.records) {
        if (!r.fired || !r.injected || r.detected)
            continue;
        // Only claim faults that corrupt R-visible architectural
        // state (the slipstream blind spots). A-side corruption is
        // healed by recovery before it can retire, so an external
        // mismatch can never be evidence of it.
        const bool rVisible =
            r.plan.target == FaultTarget::RPipeline ||
            r.plan.target == FaultTarget::MemoryCell;
        if (!rVisible)
            continue;
        r.detected = true;
        r.detectCycle = now;
        ++newly;
        SLIP_TRACE_AT(obs::Category::Fault, obs::Name::FaultDetected,
                      obs::Phase::End, now,
                      static_cast<uint64_t>(r.plan.target),
                      r.detectCycle - r.injectCycle);
    }
    return newly;
}

const FaultOutcome &
FaultInjector::outcome()
{
    FaultOutcome &o = outcome_;
    o.injected = false;
    o.targetWasRedundant = false;
    o.detected = false;
    o.pc = 0;
    o.numInjected = 0;
    o.numDetected = 0;
    for (const FaultRecord &r : o.records) {
        if (!r.injected)
            continue;
        if (o.numInjected == 0) {
            o.targetWasRedundant = r.targetWasRedundant;
            o.pc = r.pc;
        }
        ++o.numInjected;
        if (r.detected)
            ++o.numDetected;
    }
    o.injected = o.numInjected > 0;
    o.detected = o.injected && o.numDetected == o.numInjected;
    return o;
}

} // namespace slip
