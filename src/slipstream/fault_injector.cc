#include "slipstream/fault_injector.hh"

namespace slip
{

void
FaultInjector::arm(const FaultPlan &plan)
{
    plan_ = plan;
    outcome_ = FaultOutcome{};
}

bool
FaultInjector::fires(uint64_t dynIndex)
{
    if (!plan_ || dynIndex != plan_->dynIndex)
        return false;
    firedPlan = *plan_;
    plan_.reset();
    return true;
}

} // namespace slip
