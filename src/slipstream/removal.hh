/**
 * @file
 * Shared vocabulary for instruction removal: reason categories (the
 * paper's Figure 8 breakdown) and the per-trace removal plan the
 * IR-predictor hands to the A-stream fetch unit.
 */

#ifndef SLIPSTREAM_SLIPSTREAM_REMOVAL_HH
#define SLIPSTREAM_SLIPSTREAM_REMOVAL_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "uarch/trace.hh"

namespace slip
{

/**
 * Why an instruction was selected for removal. An instruction can
 * carry several reasons; back-propagated (P:) instructions inherit the
 * union of their consumers' reasons, as in the paper's accounting.
 */
namespace reason
{
constexpr uint8_t kBR = 1;   // branch instruction
constexpr uint8_t kWW = 2;   // unreferenced write (write-after-write)
constexpr uint8_t kSV = 4;   // non-modifying (same-value) write
constexpr uint8_t kProp = 8; // selected via R-DFG back-propagation
} // namespace reason

/** "BR", "SV", "P:SV,BR", ... matching the paper's Figure 8 legend. */
std::string reasonName(uint8_t mask);

/** Number of distinct reason masks (kProp|kSV|kWW|kBR span 4 bits). */
constexpr unsigned kNumReasonMasks = 16;

/**
 * Per-reason-mask removal tallies, indexed by the reason mask itself.
 * This is the hot-path representation: the per-retired-instruction
 * accounting is a single array increment; names are derived only when
 * results are assembled.
 */
using ReasonCounts = std::array<uint64_t, kNumReasonMasks>;

/** Expand tallies to the paper's named categories (zeros omitted). */
std::map<std::string, uint64_t> reasonCountsByName(const ReasonCounts &c);

/**
 * A removal plan for one trace: which slots the A-stream skips, and
 * why (the reasons ride along purely for statistics).
 */
struct RemovalPlan
{
    uint64_t irVec = 0; // bit i set => slot i removed
    std::vector<uint8_t> reasons;

    bool
    removes(unsigned slot) const
    {
        return ((irVec >> slot) & 1) != 0;
    }

    uint8_t
    reasonAt(unsigned slot) const
    {
        return slot < reasons.size() ? reasons[slot] : 0;
    }

    unsigned removedCount() const { return popCount(irVec); }
};

} // namespace slip

#endif // SLIPSTREAM_SLIPSTREAM_REMOVAL_HH
