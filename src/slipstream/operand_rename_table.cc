#include "slipstream/operand_rename_table.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace slip
{

OperandRenameTable::OperandRenameTable() = default;

uint64_t
OperandRenameTable::memKey(Addr addr, unsigned bytes)
{
    // Location identity is (address, size). Differently-sized accesses
    // to overlapping bytes are treated as distinct locations — a
    // conservative approximation that can only suppress removal, never
    // wrongly enable it (removal safety is enforced downstream by the
    // R-stream checks in any case).
    return (addr << 2) | floorLog2(bytes);
}

const OrtProducer *
OperandRenameTable::readReg(RegIndex r)
{
    if (r == kZeroReg)
        return nullptr; // r0 has no producer
    Entry &e = regs[r];
    if (!e.valid)
        return nullptr;
    e.ref = true;
    return e.producerValid ? &e.producer : nullptr;
}

const OrtProducer *
OperandRenameTable::readMem(Addr addr, unsigned bytes)
{
    auto it = mem.find(memKey(addr, bytes));
    if (it == mem.end() || !it->second.valid)
        return nullptr;
    it->second.ref = true;
    return it->second.producerValid ? &it->second.producer : nullptr;
}

OrtWriteResult
OperandRenameTable::writeEntry(Entry &e, Word value,
                               const OrtProducer &producer)
{
    OrtWriteResult result;

    if (e.valid && e.value == value) {
        // Non-modifying write: the current instruction is selected for
        // removal and the old producer remains live.
        result.nonModifying = true;
        return result;
    }

    if (e.valid && e.producerValid) {
        result.killedValid = true;
        result.killed = e.producer;
        result.killedUnreferenced = !e.ref;
    }

    e.valid = true;
    e.producerValid = true;
    e.ref = false;
    e.value = value;
    e.producer = producer;
    return result;
}

OrtWriteResult
OperandRenameTable::writeReg(RegIndex r, Word value,
                             const OrtProducer &producer)
{
    SLIP_ASSERT(r < kNumRegs, "bad register ", unsigned(r));
    if (r == kZeroReg)
        return {}; // writes to r0 are architectural no-ops
    return writeEntry(regs[r], value, producer);
}

OrtWriteResult
OperandRenameTable::writeMem(Addr addr, unsigned bytes, Word value,
                             const OrtProducer &producer)
{
    return writeEntry(mem[memKey(addr, bytes)], value, producer);
}

void
OperandRenameTable::invalidateProducer(uint64_t packetNum)
{
    for (Entry &e : regs) {
        if (e.producerValid && e.producer.packetNum == packetNum)
            e.producerValid = false;
    }
    for (auto &[key, e] : mem) {
        if (e.producerValid && e.producer.packetNum == packetNum)
            e.producerValid = false;
    }
    // Bound the memory table: entries with a live producer must stay
    // (they can still be killed), the rest are value-only cache and
    // can be shed under pressure.
    if (mem.size() > kMemEntryCap) {
        std::erase_if(mem, [](const auto &kv) {
            return !kv.second.producerValid;
        });
    }
}

void
OperandRenameTable::reset()
{
    for (Entry &e : regs)
        e = Entry{};
    mem.clear();
}

} // namespace slip
