/**
 * @file
 * The delay buffer (paper §2.2): a FIFO through which the A-stream
 * communicates control flow and data flow outcomes to the R-stream.
 *
 * Control flow is communicated as {trace-id, ir-vec} pairs; data flow
 * as one entry per A-stream-executed instruction (operand values and
 * load/store addresses). Entries for instructions the A-stream skipped
 * carry the path information the R-stream needs to line values up with
 * instructions — exactly the structure the paper describes, organized
 * here as one packet per trace.
 *
 * Occupancy accounting matches Table 2: a control-flow buffer of 128
 * pairs and a data-flow buffer of 256 instruction entries. A full
 * buffer back-pressures the A-stream; an empty one starves R-stream
 * fetch.
 */

#ifndef SLIPSTREAM_SLIPSTREAM_DELAY_BUFFER_HH
#define SLIPSTREAM_SLIPSTREAM_DELAY_BUFFER_HH

#include <deque>
#include <vector>

#include "common/stats.hh"
#include "func/executor.hh"
#include "isa/isa.hh"
#include "uarch/trace.hh"

namespace slip
{

/** One instruction slot of a communicated trace. */
struct PacketSlot
{
    Addr pc = 0;
    StaticInst si;

    bool executedInA = false;  // false => removed from the A-stream
    bool fetchSkipped = false; // removed before fetch (vs pre-decode)
    uint8_t removalReason = 0; // reason:: mask, for statistics

    /**
     * The A-stream's outcomes (defined only when executedInA): dest
     * register value, load/store address, store value, and branch
     * outcome — everything the R-stream uses as predictions and
     * validates.
     */
    ExecResult aExec;

    /**
     * The packet path's control flow through this slot: direction for
     * conditional branches and the following fetch address. For
     * removed branches this is the (presumed correct) prediction; for
     * executed ones it matches aExec.
     */
    bool pathTaken = false;
    Addr pathNextPc = 0;
};

/** One trace's worth of delay-buffer traffic. */
struct Packet
{
    uint64_t num = 0;          // monotonically increasing packet id
    TraceId actualId;          // trace id as the A-stream executed it
    uint64_t predictedIrVec = 0; // the removal the A-stream applied
    std::vector<PacketSlot> slots;
    unsigned executedCount = 0; // slots with executedInA (data entries)
    bool endsWithHalt = false;
};

/** Delay buffer configuration (paper Table 2 defaults). */
struct DelayBufferParams
{
    unsigned controlCapacity = 128; // {trace-id, ir-vec} pairs
    unsigned dataCapacity = 256;    // instruction data entries
};

/** The A→R FIFO. */
class DelayBuffer
{
  public:
    explicit DelayBuffer(const DelayBufferParams &params = {});

    /** Would a packet with `executedCount` data entries fit? */
    bool canPush(unsigned executedCount) const;

    void push(Packet packet);

    bool empty() const { return packets.empty(); }

    /** Oldest unconsumed packet. */
    const Packet &front() const;

    /**
     * Consume the front packet (R-stream finished fetching it),
     * returning it by value for downstream bookkeeping.
     */
    Packet pop();

    /** Flush everything (recovery). */
    void clear();

    unsigned controlEntries() const
    {
        return static_cast<unsigned>(packets.size());
    }
    unsigned dataEntries() const { return dataEntries_; }

    const DelayBufferParams &params() const { return params_; }
    StatGroup &stats() { return stats_; }

  private:
    DelayBufferParams params_;
    std::deque<Packet> packets;
    unsigned dataEntries_ = 0;
    StatGroup stats_;
    StatGroup::Handle statPackets{stats_.handle("packets")};
    StatGroup::Handle statFlushes{stats_.handle("flushes")};
};

} // namespace slip

#endif // SLIPSTREAM_SLIPSTREAM_DELAY_BUFFER_HH
