#include "slipstream/recovery_controller.hh"

#include "common/logging.hh"

namespace slip
{

RecoveryController::RecoveryController(Memory &rMem,
                                       const RecoveryParams &params)
    : rMem(rMem), params_(params), stats_("recovery")
{
}

uint64_t
RecoveryController::read(Addr addr, unsigned bytes)
{
    uint64_t value = 0;
    for (unsigned i = 0; i < bytes; ++i) {
        const Addr a = addr + i;
        uint8_t byte;
        auto it = overlay.find(a);
        if (it != overlay.end())
            byte = it->second.value;
        else
            byte = static_cast<uint8_t>(rMem.read(a, 1));
        value |= static_cast<uint64_t>(byte) << (8 * i);
    }
    return value;
}

void
RecoveryController::write(Addr addr, unsigned bytes, uint64_t value)
{
    for (unsigned i = 0; i < bytes; ++i) {
        OverlayByte &b = overlay[addr + i];
        b.value = static_cast<uint8_t>(value >> (8 * i));
        ++b.pendingStores;
    }
}

void
RecoveryController::onRStoreRetired(Addr addr, unsigned bytes)
{
    for (unsigned i = 0; i < bytes; ++i) {
        const Addr a = addr + i;
        auto it = overlay.find(a);
        if (it == overlay.end())
            continue; // already reclaimed (or recovery intervened)
        OverlayByte &b = it->second;
        if (b.pendingStores > 0)
            --b.pendingStores;
        if (b.pendingStores == 0 &&
            b.value == static_cast<uint8_t>(rMem.read(a, 1))) {
            // The streams agree and no younger A-store is in flight:
            // the undo window for this byte is closed.
            overlay.erase(it);
        }
    }
}

void
RecoveryController::onSkippedStoreRetired(uint64_t packetNum, Addr addr,
                                          unsigned bytes)
{
    auto &granules = doSet[packetNum];
    const Addr first = addr >> 3;
    const Addr last = (addr + bytes - 1) >> 3;
    for (Addr g = first; g <= last; ++g) {
        if (granules.insert(g).second)
            ++doSetSize;
    }
}

void
RecoveryController::onTraceVerified(uint64_t packetNum)
{
    auto it = doSet.find(packetNum);
    if (it == doSet.end())
        return;
    SLIP_ASSERT(doSetSize >= it->second.size(), "do-set size drift");
    doSetSize -= it->second.size();
    doSet.erase(it);
}

size_t
RecoveryController::trackedAddresses() const
{
    // Count the undo overlay in 8-byte granules to match the do set
    // (and the paper's notion of tracked addresses).
    std::unordered_set<Addr> granules;
    granules.reserve(overlay.size());
    for (const auto &[addr, byte] : overlay)
        granules.insert(addr >> 3);
    return granules.size() + doSetSize;
}

Cycle
RecoveryController::recover()
{
    const size_t tracked = trackedAddresses();
    stats_.distribution("tracked_at_recovery").sample(tracked);
    ++statRecoveries;

    overlay.clear();
    doSet.clear();
    doSetSize = 0;

    const unsigned regCycles =
        (kNumRegs + params_.regRestoresPerCycle - 1) /
        params_.regRestoresPerCycle;
    const unsigned memCycles =
        (static_cast<unsigned>(tracked) + params_.memRestoresPerCycle -
         1) /
        params_.memRestoresPerCycle;
    const Cycle latency = params_.startupCycles + regCycles + memCycles;
    stats_.distribution("latency").sample(latency);
    return latency;
}

} // namespace slip
