/**
 * @file
 * The instruction-removal predictor (paper §2.1.1).
 *
 * The paper builds the IR-predictor *on top of* the trace predictor:
 * each trace-predictor entry — indexed by a hash of the path history —
 * additionally holds an instruction-removal bit vector (ir-vec),
 * intermediate PCs for skipping fetch chunks, and a single resetting
 * confidence counter. The counter increments when the newly generated
 * {trace-id, ir-vec} pair from the IR-detector matches the pair
 * already at the entry, and resets otherwise.
 *
 * Keying by path history is load-bearing: because the *trace id* is
 * part of the compared pair, an entry whose next trace is itself
 * unpredictable (an unstable trace, §2.1.3) keeps resetting and never
 * reaches the threshold — removal is implicitly restricted to
 * consistently predicted control flow, which is why the paper finds
 * removal succeeding only on highly branch-predictable benchmarks.
 * A trace-id-keyed variant is provided as an ablation knob
 * (`keyByTraceId`) to quantify exactly that effect.
 *
 * Intermediate PCs are represented implicitly: removed slot runs of at
 * least `skipRunLength` instructions are skipped before fetch (no
 * fetch bandwidth, no I-cache access), shorter removed runs are
 * fetched and dropped before decode — the two removal levels of
 * §2.1.1.
 */

#ifndef SLIPSTREAM_SLIPSTREAM_IR_PREDICTOR_HH
#define SLIPSTREAM_SLIPSTREAM_IR_PREDICTOR_HH

#include <optional>
#include <vector>

#include "common/stats.hh"
#include "slipstream/removal.hh"
#include "uarch/trace.hh"
#include "uarch/trace_pred.hh"

namespace slip
{

/** IR-predictor configuration (paper Table 2 defaults). */
struct IRPredictorParams
{
    unsigned tableBits = 16;           // 2^16 entries
    unsigned confidenceThreshold = 32; // resetting counter threshold
    unsigned skipRunLength = 4;        // min removed run skipped pre-fetch
    bool enabled = true;               // false = reliable (AR-SMT) mode
    bool keyByTraceId = false;         // ablation: decouple from path
};

/**
 * Tracks per-path removal candidates and their confidence; built up
 * by the IR-detector and consulted by the A-stream fetch unit.
 *
 * Virtual so tests can substitute adversarial removal policies and
 * prove that recovery preserves architectural correctness regardless
 * of what this predictor does.
 */
class IRPredictor
{
  public:
    explicit IRPredictor(const IRPredictorParams &params = {});
    virtual ~IRPredictor() = default;

    /**
     * Removal plan for the trace predicted to follow `history`.
     * Returns nullopt when the entry's stored pair names a different
     * trace, or confidence has not reached the threshold, or removal
     * is disabled.
     */
    virtual std::optional<RemovalPlan>
    lookup(const PathHistory &history, const TraceId &predicted) const;

    /**
     * IR-detector update: the computed ir-vec for the trace that
     * actually followed `history`. A matching {trace-id, ir-vec} pair
     * gains confidence; any difference resets the entry (paper
     * §2.1.1).
     */
    virtual void update(const PathHistory &history, const TraceId &actual,
                        const RemovalPlan &computed);

    /** Drop all confidence (used on recovery in conservative modes). */
    void reset();

    /** Drop one entry's confidence (its removal proved wrong). */
    void resetEntry(const PathHistory &history, const TraceId &trace);

    /**
     * Fault injection: model a single-event upset in the predictor
     * SRAM. Flips one bit of the entry indexed by (history, trace) —
     * bits 0-7 land in the resetting confidence counter, bits 8+ in
     * the stored ir-vec. Returns true when live state was hit (a
     * valid entry, predictor enabled); corrupting an invalid entry
     * has no architectural consequence.
     */
    bool corruptEntry(const PathHistory &history, const TraceId &trace,
                      unsigned bit);

    const IRPredictorParams &params() const { return params_; }
    StatGroup &stats() { return stats_; }

  private:
    struct Entry
    {
        bool valid = false;
        uint64_t idHash = 0; // trace id of the stored pair
        RemovalPlan plan;
        unsigned confidence = 0;
    };

    size_t indexOf(const PathHistory &history, const TraceId &id) const;

    IRPredictorParams params_;
    std::vector<Entry> table;
    mutable StatGroup stats_;
    StatGroup::Handle statLookupBelowThreshold{
        stats_.handle("lookup_below_threshold")};
    StatGroup::Handle statLookupConfident{
        stats_.handle("lookup_confident")};
    StatGroup::Handle statUpdates{stats_.handle("updates")};
    StatGroup::Handle statConfidenceHits{
        stats_.handle("confidence_hits")};
    StatGroup::Handle statConfidenceResets{
        stats_.handle("confidence_resets")};
};

} // namespace slip

#endif // SLIPSTREAM_SLIPSTREAM_IR_PREDICTOR_HH
