#include "slipstream/delay_buffer.hh"

#include "common/logging.hh"

namespace slip
{

DelayBuffer::DelayBuffer(const DelayBufferParams &params)
    : params_(params), stats_("delay_buffer")
{
}

bool
DelayBuffer::canPush(unsigned executedCount) const
{
    return packets.size() < params_.controlCapacity &&
           dataEntries_ + executedCount <= params_.dataCapacity;
}

void
DelayBuffer::push(Packet packet)
{
    SLIP_ASSERT(canPush(packet.executedCount),
                "delay buffer overflow: control ", packets.size(), "/",
                params_.controlCapacity, ", data ", dataEntries_, "+",
                packet.executedCount, "/", params_.dataCapacity);
    dataEntries_ += packet.executedCount;
    stats_.distribution("control_occupancy")
        .sample(packets.size() + 1);
    stats_.distribution("data_occupancy").sample(dataEntries_);
    ++statPackets;
    packets.push_back(std::move(packet));
}

const Packet &
DelayBuffer::front() const
{
    SLIP_ASSERT(!packets.empty(), "front() on empty delay buffer");
    return packets.front();
}

Packet
DelayBuffer::pop()
{
    SLIP_ASSERT(!packets.empty(), "pop() on empty delay buffer");
    Packet p = std::move(packets.front());
    packets.pop_front();
    SLIP_ASSERT(dataEntries_ >= p.executedCount,
                "delay buffer data-entry underflow");
    dataEntries_ -= p.executedCount;
    return p;
}

void
DelayBuffer::clear()
{
    packets.clear();
    dataEntries_ = 0;
    ++statFlushes;
}

} // namespace slip
