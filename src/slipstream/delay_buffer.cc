#include "slipstream/delay_buffer.hh"

#include "common/logging.hh"
#include "obs/trace_session.hh"

namespace slip
{

DelayBuffer::DelayBuffer(const DelayBufferParams &params)
    : params_(params), stats_("delay_buffer")
{
}

bool
DelayBuffer::canPush(unsigned executedCount) const
{
    return packets.size() < params_.controlCapacity &&
           dataEntries_ + executedCount <= params_.dataCapacity;
}

void
DelayBuffer::push(Packet packet)
{
    SLIP_ASSERT(canPush(packet.executedCount),
                "delay buffer overflow: control ", packets.size(), "/",
                params_.controlCapacity, ", data ", dataEntries_, "+",
                packet.executedCount, "/", params_.dataCapacity);
    dataEntries_ += packet.executedCount;
    stats_.distribution("control_occupancy")
        .sample(packets.size() + 1);
    stats_.distribution("data_occupancy").sample(dataEntries_);
    ++statPackets;
    SLIP_TRACE(obs::Category::DelayBuffer, obs::Name::ControlOccupancy,
               obs::Phase::Counter, packets.size() + 1, 0);
    SLIP_TRACE(obs::Category::DelayBuffer, obs::Name::DataOccupancy,
               obs::Phase::Counter, dataEntries_, 0);
    packets.push_back(std::move(packet));
}

const Packet &
DelayBuffer::front() const
{
    SLIP_ASSERT(!packets.empty(), "front() on empty delay buffer");
    return packets.front();
}

Packet
DelayBuffer::pop()
{
    SLIP_ASSERT(!packets.empty(), "pop() on empty delay buffer");
    Packet p = std::move(packets.front());
    packets.pop_front();
    SLIP_ASSERT(dataEntries_ >= p.executedCount,
                "delay buffer data-entry underflow");
    dataEntries_ -= p.executedCount;
    SLIP_TRACE(obs::Category::DelayBuffer, obs::Name::ControlOccupancy,
               obs::Phase::Counter, packets.size(), 0);
    SLIP_TRACE(obs::Category::DelayBuffer, obs::Name::DataOccupancy,
               obs::Phase::Counter, dataEntries_, 0);
    return p;
}

void
DelayBuffer::clear()
{
    SLIP_TRACE(obs::Category::DelayBuffer, obs::Name::DelayBufferFlush,
               obs::Phase::Instant, packets.size(), dataEntries_);
    packets.clear();
    dataEntries_ = 0;
    ++statFlushes;
    SLIP_TRACE(obs::Category::DelayBuffer, obs::Name::ControlOccupancy,
               obs::Phase::Counter, 0, 0);
    SLIP_TRACE(obs::Category::DelayBuffer, obs::Name::DataOccupancy,
               obs::Phase::Counter, 0, 0);
}

} // namespace slip
