#include "slipstream/delay_buffer.hh"

#include "common/invariant.hh"
#include "common/logging.hh"
#include "obs/trace_session.hh"

namespace slip
{

namespace
{

/**
 * Full FIFO consistency walk (fuzz/debug only): the occupancy
 * counters must equal what the packets actually hold, occupancy must
 * respect Table 2 capacities, and packet numbers must stay strictly
 * monotonic (FIFO order is the delay buffer's whole contract).
 */
void
checkFifoInvariants([[maybe_unused]] const std::deque<Packet> &packets,
                    [[maybe_unused]] unsigned dataEntries,
                    [[maybe_unused]] const DelayBufferParams &params)
{
#ifndef SLIPSTREAM_DISABLE_INVARIANTS
    uint64_t summed = 0;
    uint64_t lastNum = 0;
    bool first = true;
    for (const Packet &p : packets) {
        unsigned executed = 0;
        for (const PacketSlot &slot : p.slots)
            executed += slot.executedInA ? 1 : 0;
        SLIP_INVARIANT(executed == p.executedCount,
                       "packet ", p.num, " claims ", p.executedCount,
                       " executed slots but holds ", executed);
        summed += p.executedCount;
        SLIP_INVARIANT(first || p.num > lastNum,
                       "packet numbers not monotonic: ", lastNum,
                       " then ", p.num);
        lastNum = p.num;
        first = false;
    }
    SLIP_INVARIANT(summed == dataEntries, "data-entry counter ",
                   dataEntries, " != summed executed slots ", summed);
    SLIP_INVARIANT(packets.size() <= params.controlCapacity,
                   "control occupancy ", packets.size(),
                   " exceeds capacity ", params.controlCapacity);
    SLIP_INVARIANT(dataEntries <= params.dataCapacity,
                   "data occupancy ", dataEntries, " exceeds capacity ",
                   params.dataCapacity);
#endif // SLIPSTREAM_DISABLE_INVARIANTS
}

} // namespace

DelayBuffer::DelayBuffer(const DelayBufferParams &params)
    : params_(params), stats_("delay_buffer")
{
}

bool
DelayBuffer::canPush(unsigned executedCount) const
{
    return packets.size() < params_.controlCapacity &&
           dataEntries_ + executedCount <= params_.dataCapacity;
}

void
DelayBuffer::push(Packet packet)
{
    SLIP_ASSERT(canPush(packet.executedCount),
                "delay buffer overflow: control ", packets.size(), "/",
                params_.controlCapacity, ", data ", dataEntries_, "+",
                packet.executedCount, "/", params_.dataCapacity);
    dataEntries_ += packet.executedCount;
    stats_.distribution("control_occupancy")
        .sample(packets.size() + 1);
    stats_.distribution("data_occupancy").sample(dataEntries_);
    ++statPackets;
    SLIP_TRACE(obs::Category::DelayBuffer, obs::Name::ControlOccupancy,
               obs::Phase::Counter, packets.size() + 1, 0);
    SLIP_TRACE(obs::Category::DelayBuffer, obs::Name::DataOccupancy,
               obs::Phase::Counter, dataEntries_, 0);
    packets.push_back(std::move(packet));
    if (SLIP_INVARIANTS_ACTIVE())
        checkFifoInvariants(packets, dataEntries_, params_);
}

const Packet &
DelayBuffer::front() const
{
    SLIP_ASSERT(!packets.empty(), "front() on empty delay buffer");
    return packets.front();
}

Packet
DelayBuffer::pop()
{
    SLIP_ASSERT(!packets.empty(), "pop() on empty delay buffer");
    Packet p = std::move(packets.front());
    packets.pop_front();
    SLIP_ASSERT(dataEntries_ >= p.executedCount,
                "delay buffer data-entry underflow");
    dataEntries_ -= p.executedCount;
    SLIP_TRACE(obs::Category::DelayBuffer, obs::Name::ControlOccupancy,
               obs::Phase::Counter, packets.size(), 0);
    SLIP_TRACE(obs::Category::DelayBuffer, obs::Name::DataOccupancy,
               obs::Phase::Counter, dataEntries_, 0);
    if (SLIP_INVARIANTS_ACTIVE())
        checkFifoInvariants(packets, dataEntries_, params_);
    return p;
}

void
DelayBuffer::clear()
{
    SLIP_TRACE(obs::Category::DelayBuffer, obs::Name::DelayBufferFlush,
               obs::Phase::Instant, packets.size(), dataEntries_);
    packets.clear();
    dataEntries_ = 0;
    ++statFlushes;
    SLIP_TRACE(obs::Category::DelayBuffer, obs::Name::ControlOccupancy,
               obs::Phase::Counter, 0, 0);
    SLIP_TRACE(obs::Category::DelayBuffer, obs::Name::DataOccupancy,
               obs::Phase::Counter, 0, 0);
}

} // namespace slip
