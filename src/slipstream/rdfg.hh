/**
 * @file
 * The reverse dataflow graph (R-DFG) the IR-detector builds over each
 * trace (paper §2.1.2). Nodes are the trace's instructions; edges run
 * from producers to consumers *within the same trace* (back-
 * propagation is confined to a trace, §2.1.3). When a triggering
 * condition selects an instruction for removal, selection status
 * back-propagates: a producer is selected once it has been killed,
 * every consumer is known, all consumers are selected, and all lie in
 * the same trace.
 */

#ifndef SLIPSTREAM_SLIPSTREAM_RDFG_HH
#define SLIPSTREAM_SLIPSTREAM_RDFG_HH

#include <cstdint>
#include <vector>

#include "slipstream/removal.hh"

namespace slip
{

/** Back-propagation circuitry for one trace. */
class Rdfg
{
  public:
    /** Begin a trace of `numSlots` instructions. */
    explicit Rdfg(unsigned numSlots);

    /**
     * Declare slot eligibility: instructions with irreversible side
     * effects (HALT, output, indirect jumps) are never removable.
     */
    void setRemovable(unsigned slot, bool removable);

    /** Add a same-trace dataflow edge producer -> consumer. */
    void addEdge(unsigned producer, unsigned consumer);

    /** The producer has a consumer beyond this trace: pins it. */
    void markExternalConsumer(unsigned producer);

    /**
     * Triggering condition hit (branch / unreferenced write /
     * non-modifying write): select the slot and back-propagate.
     */
    void select(unsigned slot, uint8_t reasons);

    /**
     * The slot's written value was overwritten — its consumer set is
     * now complete; removal may propagate to it.
     */
    void kill(unsigned slot);

    bool selected(unsigned slot) const { return nodes[slot].selected; }
    uint8_t reasons(unsigned slot) const { return nodes[slot].reasons; }

    unsigned numSlots() const
    {
        return static_cast<unsigned>(nodes.size());
    }

    /** Removal bit vector over the slots (bit i = slot i selected). */
    uint64_t irVec() const;

    /** Per-slot reason masks, aligned with irVec(). */
    std::vector<uint8_t> reasonVector() const;

  private:
    struct Node
    {
        bool removable = true;
        bool selected = false;
        bool killed = false;
        bool externalConsumer = false;
        uint8_t reasons = 0;
        uint16_t consumers = 0;
        uint16_t selectedConsumers = 0;
        uint8_t inheritedReasons = 0; // union of selected consumers'
        std::vector<uint16_t> producers;
    };

    void tryPropagate(unsigned slot);

    std::vector<Node> nodes;
};

} // namespace slip

#endif // SLIPSTREAM_SLIPSTREAM_RDFG_HH
