/**
 * @file
 * The recovery controller (paper §2.3, Figure 4).
 *
 * Maintains the addresses of memory locations that are potentially
 * corrupted in the A-stream context, sufficient to recover the
 * A-stream memory context from the R-stream's:
 *
 *  - "store 1" (undo set): stores retired by the A-stream but not yet
 *    checked/retired by the R-stream. Implemented as the A-stream's
 *    memory *overlay*: A-stream writes land in the overlay, A-stream
 *    reads see overlay bytes over the authoritative R-stream memory,
 *    and entries are reclaimed when the companion R-stream store
 *    retires with matching data. Discarding the overlay "undoes" the
 *    stores — the paper's selective repair, made functional.
 *
 *  - "store 2" (do set): stores skipped in the A-stream, tracked from
 *    R-stream retirement until the IR-detector verifies the removal
 *    was sound (the detector's trace-eviction check bounds this).
 *
 * The recovery latency model matches Table 2: a fixed pipeline-startup
 * cost, then 4 register restores per cycle followed by 4 memory
 * restores per cycle (minimum 21 cycles with 64 registers).
 */

#ifndef SLIPSTREAM_SLIPSTREAM_RECOVERY_CONTROLLER_HH
#define SLIPSTREAM_SLIPSTREAM_RECOVERY_CONTROLLER_HH

#include <unordered_map>
#include <unordered_set>

#include "common/stats.hh"
#include "func/arch_state.hh"
#include "mem/memory.hh"

namespace slip
{

/** Recovery latency parameters (paper Table 2). */
struct RecoveryParams
{
    Cycle startupCycles = 5;
    unsigned regRestoresPerCycle = 4;
    unsigned memRestoresPerCycle = 4;
};

/**
 * The controller doubles as the A-stream's memory port: the overlay
 * *is* the set of tracked store-undo addresses.
 */
class RecoveryController : public MemPort
{
  public:
    RecoveryController(Memory &rMem, const RecoveryParams &params = {});

    // --- MemPort: the A-stream context's view of memory ---
    uint64_t read(Addr addr, unsigned bytes) override;
    void write(Addr addr, unsigned bytes, uint64_t value) override;

    /**
     * The R-stream retired a store the A-stream also executed: the
     * undo window for these bytes closes once every outstanding
     * A-stream store to them has been matched and the overlay agrees
     * with the authoritative memory.
     */
    void onRStoreRetired(Addr addr, unsigned bytes);

    /**
     * The R-stream retired a store the A-stream skipped: track it in
     * the do set until the IR-detector verifies trace `packetNum`.
     */
    void onSkippedStoreRetired(uint64_t packetNum, Addr addr,
                               unsigned bytes);

    /** IR-detector verified the trace: drop its do-set entries. */
    void onTraceVerified(uint64_t packetNum);

    /**
     * Perform recovery: discard the overlay and the do set (the
     * A-stream context collapses onto the R-stream's), returning the
     * modeled latency for the tracked state that had to be restored.
     */
    Cycle recover();

    /** Tracked locations (undo overlay granules + do set). */
    size_t trackedAddresses() const;

    const RecoveryParams &params() const { return params_; }
    StatGroup &stats() { return stats_; }

  private:
    struct OverlayByte
    {
        uint8_t value = 0;
        uint32_t pendingStores = 0; // A-stores not yet matched by R
    };

    Memory &rMem;
    RecoveryParams params_;
    std::unordered_map<Addr, OverlayByte> overlay;

    /** Do set: 8-byte granules per unverified trace. */
    std::unordered_map<uint64_t, std::unordered_set<Addr>> doSet;
    size_t doSetSize = 0;

    StatGroup stats_;
    StatGroup::Handle statRecoveries{stats_.handle("recoveries")};
};

} // namespace slip

#endif // SLIPSTREAM_SLIPSTREAM_RECOVERY_CONTROLLER_HH
