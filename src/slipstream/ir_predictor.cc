#include "slipstream/ir_predictor.hh"

#include "common/invariant.hh"
#include "common/logging.hh"
#include "obs/trace_session.hh"

namespace slip
{

namespace
{

/** Saturation cap for the resetting confidence counter. */
constexpr unsigned kConfidenceCap = 1'000'000;

} // namespace

std::string
reasonName(uint8_t mask)
{
    std::string name;
    if (mask & reason::kProp)
        name += "P:";
    bool first = true;
    const auto add = [&](uint8_t bit, const char *label) {
        if (mask & bit) {
            if (!first)
                name += ",";
            name += label;
            first = false;
        }
    };
    add(reason::kSV, "SV");
    add(reason::kWW, "WW");
    add(reason::kBR, "BR");
    return name.empty() ? "none" : name;
}

std::map<std::string, uint64_t>
reasonCountsByName(const ReasonCounts &c)
{
    std::map<std::string, uint64_t> out;
    for (unsigned mask = 0; mask < kNumReasonMasks; ++mask) {
        if (c[mask])
            out[reasonName(static_cast<uint8_t>(mask))] += c[mask];
    }
    return out;
}

IRPredictor::IRPredictor(const IRPredictorParams &params)
    : params_(params), table(size_t(1) << params.tableBits),
      stats_("ir_pred")
{
}

size_t
IRPredictor::indexOf(const PathHistory &history, const TraceId &id) const
{
    const uint64_t h = params_.keyByTraceId ? id.hash()
                                            : history.correlatedHash();
    return h & ((size_t(1) << params_.tableBits) - 1);
}

std::optional<RemovalPlan>
IRPredictor::lookup(const PathHistory &history,
                    const TraceId &predicted) const
{
    if (!params_.enabled)
        return std::nullopt;
    const Entry &e = table[indexOf(history, predicted)];
    if (!e.valid || e.idHash != predicted.hash())
        return std::nullopt;
    if (e.confidence < params_.confidenceThreshold) {
        ++statLookupBelowThreshold;
        SLIP_TRACE(obs::Category::IRPredictor,
                   obs::Name::IRLookupBelowThreshold,
                   obs::Phase::Instant, e.confidence,
                   predicted.startPc);
        return std::nullopt;
    }
    if (e.plan.irVec == 0)
        return std::nullopt;
    SLIP_INVARIANT(e.confidence <= kConfidenceCap,
                   "confidence counter ", e.confidence,
                   " above saturation cap for trace ",
                   predicted.startPc);
    ++statLookupConfident;
    SLIP_TRACE(obs::Category::IRPredictor, obs::Name::IRLookupConfident,
               obs::Phase::Instant, e.plan.irVec, predicted.startPc);
    return e.plan;
}

void
IRPredictor::update(const PathHistory &history, const TraceId &actual,
                    const RemovalPlan &computed)
{
    ++statUpdates;
    Entry &e = table[indexOf(history, actual)];
    const uint64_t idHash = actual.hash();

    if (e.valid && e.idHash == idHash && e.plan.irVec == computed.irVec) {
        // Repeated {trace-id, ir-vec} indication: build confidence.
        if (e.confidence < kConfidenceCap)
            ++e.confidence;
        e.plan.reasons = computed.reasons; // keep freshest attribution
        SLIP_INVARIANT(e.confidence >= 1 &&
                           e.confidence <= kConfidenceCap,
                       "confidence counter ", e.confidence,
                       " out of [1, cap] after build for trace ",
                       actual.startPc);
        ++statConfidenceHits;
        return;
    }

    // A different trace followed this path, or the same trace with a
    // different ir-vec: the resetting counter starts over.
    e.valid = true;
    e.idHash = idHash;
    e.plan = computed;
    e.confidence = 0;
    ++statConfidenceResets;
    SLIP_TRACE(obs::Category::IRPredictor, obs::Name::IRConfidenceReset,
               obs::Phase::Instant, actual.startPc, computed.irVec);
}

void
IRPredictor::resetEntry(const PathHistory &history, const TraceId &trace)
{
    Entry &e = table[indexOf(history, trace)];
    if (e.valid && e.idHash == trace.hash())
        e.confidence = 0;
}

void
IRPredictor::reset()
{
    for (Entry &e : table)
        e.confidence = 0;
}

bool
IRPredictor::corruptEntry(const PathHistory &history,
                          const TraceId &trace, unsigned bit)
{
    if (!params_.enabled)
        return false;
    Entry &e = table[indexOf(history, trace)];
    if (bit < 8) {
        // Confidence-counter bit: can push a building entry over the
        // threshold (premature removal) or knock a confident one
        // under it (lost removal — performance, not correctness).
        e.confidence ^= 1u << bit;
    } else {
        // Stored ir-vec bit: removes an instruction that is not
        // ineffectual, or keeps one that is. A wrong removal corrupts
        // only the A-stream; the detector/R-stream checks expose it.
        e.plan.irVec ^= uint64_t(1) << ((bit - 8) & 63);
    }
    return e.valid;
}

} // namespace slip
