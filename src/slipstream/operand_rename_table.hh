/**
 * @file
 * The IR-detector's operand rename table (paper §2.1.2, Figure 3).
 *
 * Similar to a register renamer but tracking both registers and
 * memory locations. Each entry records the most recent producer of a
 * location, the produced value, and whether the value has been
 * referenced — the state needed to detect non-modifying writes,
 * unreferenced writes, and to kill values (observe overwrites) so the
 * R-DFG back-propagation knows when an instruction's consumer set is
 * complete.
 */

#ifndef SLIPSTREAM_SLIPSTREAM_OPERAND_RENAME_TABLE_HH
#define SLIPSTREAM_SLIPSTREAM_OPERAND_RENAME_TABLE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace slip
{

/** Identifies one tracked dynamic instruction: packet + slot. */
struct OrtProducer
{
    uint64_t packetNum = 0;
    uint8_t slot = 0;

    bool operator==(const OrtProducer &other) const = default;
};

/** What happened when a write was checked against the table. */
struct OrtWriteResult
{
    /** The write produced the value already at the location. */
    bool nonModifying = false;

    /** A previous producer was killed (overwritten). */
    bool killedValid = false;
    OrtProducer killed;

    /** The killed producer's value was never referenced. */
    bool killedUnreferenced = false;
};

/** The table itself: 64 register entries + memory entries on demand. */
class OperandRenameTable
{
  public:
    OperandRenameTable();

    /**
     * Record a read of a register. Marks the entry referenced.
     * @return the current producer, or nullptr if untracked.
     */
    const OrtProducer *readReg(RegIndex r);

    /** Record a read of a memory location (loads). */
    const OrtProducer *readMem(Addr addr, unsigned bytes);

    /**
     * Check-and-update for a register write (paper's two rules):
     * a matching value is a non-modifying write (the old producer
     * stays live and the table is not updated); a differing value
     * kills the old producer, reporting whether it was unreferenced.
     */
    OrtWriteResult writeReg(RegIndex r, Word value,
                            const OrtProducer &producer);

    /** Check-and-update for a memory write (stores). */
    OrtWriteResult writeMem(Addr addr, unsigned bytes, Word value,
                            const OrtProducer &producer);

    /**
     * A packet is leaving the analysis scope: entries it produced can
     * no longer be killed or back-propagated into, so their producer
     * identity is dropped. The *values* stay valid — the table mirrors
     * architectural state, which scope eviction does not change — so
     * non-modifying-write detection stays stable across scope
     * boundaries (otherwise every scope-length-th instance of a
     * same-value write computes a different ir-vec and the resetting
     * confidence counter never saturates).
     */
    void invalidateProducer(uint64_t packetNum);

    /** Drop all state (recovery / reuse). */
    void reset();

    size_t memEntryCount() const { return mem.size(); }

  private:
    struct Entry
    {
        bool valid = false;         // value field mirrors the location
        bool producerValid = false; // producer still inside the scope
        bool ref = false;
        Word value = 0;
        OrtProducer producer;
    };

    /** Memory-table size bound; value-only entries shed beyond it. */
    static constexpr size_t kMemEntryCap = 1 << 20;

    static uint64_t memKey(Addr addr, unsigned bytes);

    OrtWriteResult writeEntry(Entry &entry, Word value,
                              const OrtProducer &producer);

    std::array<Entry, kNumRegs> regs;
    std::unordered_map<uint64_t, Entry> mem;
};

} // namespace slip

#endif // SLIPSTREAM_SLIPSTREAM_OPERAND_RENAME_TABLE_HH
