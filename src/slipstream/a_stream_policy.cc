#include "slipstream/a_stream_policy.hh"

#include "common/env.hh"
#include "common/logging.hh"

namespace slip
{

namespace
{

constexpr const char *kPolicyNames[kNumAStreamPolicies] = {
    "ir",
    "runahead",
    "filtered",
    "reliability",
};

} // namespace

const char *
aStreamPolicyName(AStreamPolicyKind kind)
{
    const auto i = unsigned(kind);
    return i < kNumAStreamPolicies ? kPolicyNames[i] : "?";
}

bool
parseAStreamPolicy(const std::string &text, AStreamPolicyKind &out)
{
    for (unsigned i = 0; i < kNumAStreamPolicies; ++i) {
        if (text == kPolicyNames[i]) {
            out = AStreamPolicyKind(i);
            return true;
        }
    }
    return false;
}

AStreamPolicyKind
aStreamPolicyFromEnv(AStreamPolicyKind fallback)
{
    return AStreamPolicyKind(envChoice(
        "SLIPSTREAM_ASTREAM_POLICY",
        {"ir", "runahead", "filtered", "reliability"},
        size_t(fallback)));
}

AStreamPolicyParams
aStreamPolicyParamsFromEnv(AStreamPolicyParams base)
{
    AStreamPolicyParams p = base;
    p.kind = aStreamPolicyFromEnv(base.kind);
    const uint64_t traces =
        envU64("SLIPSTREAM_RUNAHEAD_TRACES", base.runaheadTraces);
    if (traces == 0) {
        SLIP_WARN("ignoring SLIPSTREAM_RUNAHEAD_TRACES=0 (a "
                  "zero-length runahead mode never shortens "
                  "anything); using ",
                  base.runaheadTraces ? base.runaheadTraces : 4);
        p.runaheadTraces =
            base.runaheadTraces ? base.runaheadTraces : 4;
    } else {
        p.runaheadTraces = unsigned(traces);
    }
    return p;
}

AStreamPolicy::AStreamPolicy(const AStreamPolicyParams &params)
    : params_(params), stats_("a_policy")
{
}

void
AStreamPolicy::onPacketComplete(Packet &packet)
{
    if (packet.executedCount > 0)
        ++statDataPackets;
    else
        ++statControlOnlyPackets;
}

void
AStreamPolicy::stripSlot(PacketSlot &slot)
{
    // Demotion only touches the communicated payload: the A-core's
    // fetch blocks are already emitted, and pathTaken/pathNextPc
    // survive for direction-only validation.
    slot.executedInA = false;
    slot.aExec = ExecResult{};
    ++statStrippedSlots;
}

void
AStreamPolicy::stripAll(Packet &packet)
{
    for (PacketSlot &slot : packet.slots) {
        if (slot.executedInA)
            stripSlot(slot);
    }
    packet.executedCount = 0;
}

void
AStreamPolicy::recount(Packet &packet)
{
    unsigned executed = 0;
    for (const PacketSlot &slot : packet.slots)
        executed += slot.executedInA ? 1 : 0;
    packet.executedCount = executed;
}

namespace
{

/** The paper's mechanism, verbatim: defer to the IR-predictor. */
class IRRemovalPolicy : public AStreamPolicy
{
  public:
    using AStreamPolicy::AStreamPolicy;

    std::optional<RemovalPlan>
    planTrace(const IRPredictor &irPredictor, const PathHistory &history,
              const TraceId &predicted) override
    {
        return irPredictor.lookup(history, predicted);
    }
};

/**
 * Mode machinery shared by the runahead variants: a direct-mapped
 * 64B-line tag array models the L2; an executed load that misses it
 * enters runahead mode for `runaheadTraces` traces. Recovery is the
 * checkpoint-restore: mode state and the miss model reset with the
 * rest of the speculative context.
 */
class RunaheadBase : public AStreamPolicy
{
  public:
    explicit RunaheadBase(const AStreamPolicyParams &params)
        : AStreamPolicy(params),
          tags(params.missLines ? params.missLines : 1, ~uint64_t(0))
    {
    }

    std::optional<RemovalPlan>
    planTrace(const IRPredictor &, const PathHistory &,
              const TraceId &) override
    {
        // Runahead never removes: the A-stream executes everything
        // (that is what runs ahead); shortening happens on the
        // communication side, by discarding speculative results.
        return std::nullopt;
    }

    void
    onSlotExecuted(const StaticInst &si, const ExecResult &exec) override
    {
        if (!si.isLoad())
            return;
        const uint64_t line = exec.memAddr >> 6;
        uint64_t &tag = tags[line % tags.size()];
        if (tag == line)
            return;
        tag = line;
        if (modeTracesLeft == 0)
            ++statModeEntries;
        modeTracesLeft = params_.runaheadTraces;
    }

    void
    onRecovery() override
    {
        modeTracesLeft = 0;
        std::fill(tags.begin(), tags.end(), ~uint64_t(0));
    }

  protected:
    bool
    consumeModeTrace()
    {
        if (modeTracesLeft == 0)
            return false;
        --modeTracesLeft;
        ++statModeTraces;
        return true;
    }

    unsigned modeTracesLeft = 0;
    std::vector<uint64_t> tags;
};

/** Classic runahead: in-mode packets forward control only. */
class RunaheadPolicy : public RunaheadBase
{
  public:
    using RunaheadBase::RunaheadBase;

    void
    onPacketComplete(Packet &packet) override
    {
        if (consumeModeTrace())
            stripAll(packet);
        AStreamPolicy::onPacketComplete(packet);
    }
};

/**
 * Filtered runahead: in-mode packets keep loads and the packet-local
 * backward slices feeding their addresses; every other speculative
 * result is dropped.
 */
class FilteredRunaheadPolicy : public RunaheadBase
{
  public:
    using RunaheadBase::RunaheadBase;

    void
    onPacketComplete(Packet &packet) override
    {
        if (consumeModeTrace())
            filterToLoadSlices(packet);
        AStreamPolicy::onPacketComplete(packet);
    }

  private:
    void
    filterToLoadSlices(Packet &packet)
    {
        // One backward pass: a slot survives if it is a load or if a
        // surviving slot consumes its destination register. Slices
        // are packet-local by construction (cross-trace producers are
        // the R-stream's problem either way).
        uint64_t needed = 0;
        for (size_t i = packet.slots.size(); i-- > 0;) {
            PacketSlot &slot = packet.slots[i];
            if (!slot.executedInA)
                continue;
            const RegIndex dst = slot.si.destReg();
            const bool feeds =
                dst != kNoReg && dst != kZeroReg &&
                ((needed >> (dst % 64)) & 1) != 0;
            if (slot.si.isLoad() || feeds) {
                if (dst != kNoReg)
                    needed &= ~(uint64_t(1) << (dst % 64));
                RegIndex srcs[2];
                slot.si.srcRegs(srcs);
                for (RegIndex s : srcs) {
                    if (s != kNoReg && s != kZeroReg)
                        needed |= uint64_t(1) << (s % 64);
                }
            } else {
                stripSlot(slot);
            }
        }
        recount(packet);
    }
};

/**
 * Reliability-aware runahead: keep the paper's removal (the speedup
 * mechanism) but forward control only, always — a corrupted A-stream
 * context can never plant wrong values in the delay buffer for the
 * R-stream to consume as predictions. A recovery additionally
 * suspends removal for `cooldownTraces` traces so a poisoned
 * IR-predictor entry cannot immediately re-shorten the restart path.
 */
class ReliabilityRunaheadPolicy : public AStreamPolicy
{
  public:
    using AStreamPolicy::AStreamPolicy;

    std::optional<RemovalPlan>
    planTrace(const IRPredictor &irPredictor, const PathHistory &history,
              const TraceId &predicted) override
    {
        if (cooldownLeft > 0) {
            --cooldownLeft;
            ++statModeTraces;
            return std::nullopt;
        }
        return irPredictor.lookup(history, predicted);
    }

    void
    onPacketComplete(Packet &packet) override
    {
        stripAll(packet);
        AStreamPolicy::onPacketComplete(packet);
    }

    void
    onRecovery() override
    {
        if (cooldownLeft == 0)
            ++statModeEntries;
        cooldownLeft = params_.cooldownTraces;
    }

  private:
    unsigned cooldownLeft = 0;
};

} // namespace

std::unique_ptr<AStreamPolicy>
makeAStreamPolicy(const AStreamPolicyParams &params)
{
    switch (params.kind) {
      case AStreamPolicyKind::Runahead:
        return std::make_unique<RunaheadPolicy>(params);
      case AStreamPolicyKind::FilteredRunahead:
        return std::make_unique<FilteredRunaheadPolicy>(params);
      case AStreamPolicyKind::ReliabilityRunahead:
        return std::make_unique<ReliabilityRunaheadPolicy>(params);
      case AStreamPolicyKind::IRRemoval:
        break;
    }
    return std::make_unique<IRRemovalPolicy>(params);
}

} // namespace slip
