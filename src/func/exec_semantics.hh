/**
 * @file
 * Shared arithmetic edge-case semantics (RISC-V-style division and
 * high multiply). Both the legacy switch executor and the predecoded
 * engines must agree bit-for-bit, so the helpers live in one header.
 */

#ifndef SLIPSTREAM_FUNC_EXEC_SEMANTICS_HH
#define SLIPSTREAM_FUNC_EXEC_SEMANTICS_HH

#include <limits>

#include "common/types.hh"

namespace slip
{

/** Signed division with RISC-V-style edge-case semantics. */
inline Word
divSigned(Word a, Word b)
{
    const SWord sa = static_cast<SWord>(a);
    const SWord sb = static_cast<SWord>(b);
    if (sb == 0)
        return ~0ull; // all ones
    if (sa == std::numeric_limits<SWord>::min() && sb == -1)
        return a; // overflow: quotient = dividend
    return static_cast<Word>(sa / sb);
}

inline Word
remSigned(Word a, Word b)
{
    const SWord sa = static_cast<SWord>(a);
    const SWord sb = static_cast<SWord>(b);
    if (sb == 0)
        return a;
    if (sa == std::numeric_limits<SWord>::min() && sb == -1)
        return 0;
    return static_cast<Word>(sa % sb);
}

inline Word
mulHigh(Word a, Word b)
{
    const __int128 p = static_cast<__int128>(static_cast<SWord>(a)) *
                       static_cast<__int128>(static_cast<SWord>(b));
    return static_cast<Word>(static_cast<unsigned __int128>(p) >> 64);
}

} // namespace slip

#endif // SLIPSTREAM_FUNC_EXEC_SEMANTICS_HH
