#include "func/arch_state.hh"

#include "mem/memory.hh"

namespace slip
{

uint64_t
DirectMemPort::read(Addr addr, unsigned bytes)
{
    return mem.read(addr, bytes);
}

void
DirectMemPort::write(Addr addr, unsigned bytes, uint64_t value)
{
    mem.write(addr, bytes, value);
}

} // namespace slip
