#include "func/arch_state.hh"

#include <bit>
#include <cstring>

#include "mem/memory.hh"

namespace slip
{

uint64_t
DirectMemPort::read(Addr addr, unsigned bytes)
{
    if constexpr (std::endian::native == std::endian::little) {
        constexpr Addr kOffMask = Memory::kPageBytes - 1;
        const size_t off = static_cast<size_t>(addr & kOffMask);
        if (off + bytes <= Memory::kPageBytes) {
            const Addr page = addr & ~kOffMask;
            if (page != cachedPage_ ||
                cachedEpoch_ != mem.epoch()) {
                // Loads must not allocate: an untouched page reads
                // zero through the sparse path and stays uncached.
                uint8_t *p = mem.peekPagePtr(page);
                if (!p)
                    return mem.read(addr, bytes);
                cachedPage_ = page;
                cachedData_ = p;
                cachedEpoch_ = mem.epoch();
            }
            uint64_t value = 0;
            std::memcpy(&value, cachedData_ + off, bytes);
            return value;
        }
    }
    return mem.read(addr, bytes);
}

void
DirectMemPort::write(Addr addr, unsigned bytes, uint64_t value)
{
    if constexpr (std::endian::native == std::endian::little) {
        constexpr Addr kOffMask = Memory::kPageBytes - 1;
        const size_t off = static_cast<size_t>(addr & kOffMask);
        if (off + bytes <= Memory::kPageBytes) {
            const Addr page = addr & ~kOffMask;
            if (page != cachedPage_ ||
                cachedEpoch_ != mem.epoch()) {
                cachedData_ = mem.touchPagePtr(page);
                cachedPage_ = page;
                cachedEpoch_ = mem.epoch();
            }
            std::memcpy(cachedData_ + off, &value, bytes);
            return;
        }
    }
    mem.write(addr, bytes, value);
}

} // namespace slip
