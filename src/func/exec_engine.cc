#include "func/exec_engine.hh"

#include <bit>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "assembler/program.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "func/arch_state.hh"
#include "func/exec_semantics.hh"
#include "isa/isa.hh"
#include "isa/micro_op.hh"
#include "mem/memory.hh"

// The computed-goto engine needs the GNU labels-as-values extension;
// gate it on compiler support and the configure-time opt-out.
#if !defined(SLIPSTREAM_NO_THREADED_DISPATCH) && \
    (defined(__GNUC__) || defined(__clang__))
#define SLIP_HAVE_THREADED_DISPATCH 1
#else
#define SLIP_HAVE_THREADED_DISPATCH 0
#endif

namespace slip
{

namespace
{

#if SLIP_HAVE_THREADED_DISPATCH
EngineExit
runThreadedImpl(ArchState &state, Memory &mem, const Program &program,
                std::string *output, uint64_t maxInsts,
                const StoreObserver *storeObserver)
#define SLIP_ENGINE_THREADED 1
#include "func/exec_engine_body.inc"
#undef SLIP_ENGINE_THREADED
#endif // SLIP_HAVE_THREADED_DISPATCH

EngineExit
runSwitchImpl(ArchState &state, Memory &mem, const Program &program,
              std::string *output, uint64_t maxInsts,
              const StoreObserver *storeObserver)
#define SLIP_ENGINE_THREADED 0
#include "func/exec_engine_body.inc"
#undef SLIP_ENGINE_THREADED

} // namespace

const char *
dispatchName(DispatchKind kind)
{
    switch (kind) {
      case DispatchKind::Threaded: return "threaded";
      case DispatchKind::Switch: return "switch";
      case DispatchKind::Legacy: return "legacy";
    }
    return "?";
}

bool
threadedDispatchCompiled()
{
    return SLIP_HAVE_THREADED_DISPATCH != 0;
}

DispatchKind
defaultDispatch()
{
    const DispatchKind fallback = threadedDispatchCompiled()
                                      ? DispatchKind::Threaded
                                      : DispatchKind::Switch;
    // Strict mode-knob contract (common/env::envChoice): a typo here
    // would silently benchmark the wrong engine, so unknown values
    // throw. "threaded" on a build without the computed-goto engine
    // is a *valid* request that cannot be honored — that stays a
    // warning plus the switch engine, not an error.
    switch (envChoice("SLIPSTREAM_DISPATCH",
                      {"threaded", "switch", "legacy"},
                      size_t(fallback))) {
      case 0:
        if (!threadedDispatchCompiled()) {
            SLIP_WARN("SLIPSTREAM_DISPATCH=threaded but the "
                      "computed-goto engine is not compiled in; "
                      "using switch");
            return DispatchKind::Switch;
        }
        return DispatchKind::Threaded;
      case 1:
        return DispatchKind::Switch;
      case 2:
        return DispatchKind::Legacy;
      default:
        return fallback;
    }
}

EngineExit
runPredecoded(ArchState &state, Memory &mem, const Program &program,
              std::string *output, uint64_t maxInsts, DispatchKind kind,
              const StoreObserver *storeObserver)
{
#if SLIP_HAVE_THREADED_DISPATCH
    if (kind == DispatchKind::Threaded)
        return runThreadedImpl(state, mem, program, output, maxInsts,
                               storeObserver);
#endif
    return runSwitchImpl(state, mem, program, output, maxInsts,
                         storeObserver);
}

} // namespace slip
