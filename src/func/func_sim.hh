/**
 * @file
 * The functional simulator: architecturally-correct, run-to-completion
 * execution of an SSIR program. It is the oracle the paper's §4
 * describes — an independent functional model used to validate the
 * timing simulator's retired control and data flow.
 */

#ifndef SLIPSTREAM_FUNC_FUNC_SIM_HH
#define SLIPSTREAM_FUNC_FUNC_SIM_HH

#include <functional>
#include <string>

#include "assembler/program.hh"
#include "func/arch_state.hh"
#include "func/exec_engine.hh"
#include "func/executor.hh"
#include "mem/memory.hh"

namespace slip
{

/** Outcome of a functional run. */
struct FuncRunResult
{
    std::string output;       // everything PUTC/PUTN emitted
    uint64_t instCount = 0;   // retired dynamic instructions
    bool halted = false;      // false => hit the instruction limit
    Addr finalPc = 0;
};

/** Architecturally-correct interpreter for SSIR programs. */
class FuncSim
{
  public:
    /** Load a program: data image into memory, sp at the stack top. */
    explicit FuncSim(const Program &program);

    /**
     * Run until HALT or until `maxInsts` instructions retire.
     * @param maxInsts safety limit; 0 means the default (1 billion)
     */
    FuncRunResult run(uint64_t maxInsts = 0);

    /**
     * Execute exactly one instruction. Returns its ExecResult;
     * res.halted stays true once HALT has executed.
     */
    ExecResult step();

    /**
     * Run with a per-instruction observer (used by differential tests
     * to compare retirement streams instruction by instruction).
     * A null observer is the plain run() fast path; a non-null one
     * forces per-instruction stepping, since the block engine cannot
     * surface every ExecResult.
     */
    FuncRunResult
    runWithObserver(std::function<void(Addr pc, const StaticInst &,
                                       const ExecResult &)> observer,
                    uint64_t maxInsts = 0);

    /**
     * Run observing only retired stores. Unlike runWithObserver this
     * keeps the block engine's full speed — store handlers are the
     * only ones that see the hook — which is what the fuzz oracle's
     * reference leg wants.
     */
    FuncRunResult runWithStoreObserver(const StoreObserver &observer,
                                       uint64_t maxInsts = 0);

    /** Override the dispatch engine (default: $SLIPSTREAM_DISPATCH). */
    void setDispatch(DispatchKind kind) { dispatch_ = kind; }
    DispatchKind dispatch() const { return dispatch_; }

    const ArchState &state() const { return state_; }
    ArchState &state() { return state_; }
    Memory &memory() { return mem; }
    const std::string &output() const { return output_; }
    bool halted() const { return halted_; }

  private:
    /** One instruction through the per-instruction path. */
    ExecResult execOne();

    /** Block-engine driver shared by run()/runWithStoreObserver(). */
    FuncRunResult runEngine(uint64_t maxInsts,
                            const StoreObserver *storeObserver);

    FuncRunResult finishResult() const;

    const Program &program;
    Memory mem;
    DirectMemPort port;
    ArchState state_;
    std::string output_;
    bool halted_ = false;
    uint64_t retired = 0;
    DispatchKind dispatch_ = defaultDispatch();
};

} // namespace slip

#endif // SLIPSTREAM_FUNC_FUNC_SIM_HH
