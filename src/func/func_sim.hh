/**
 * @file
 * The functional simulator: architecturally-correct, run-to-completion
 * execution of an SSIR program. It is the oracle the paper's §4
 * describes — an independent functional model used to validate the
 * timing simulator's retired control and data flow.
 */

#ifndef SLIPSTREAM_FUNC_FUNC_SIM_HH
#define SLIPSTREAM_FUNC_FUNC_SIM_HH

#include <functional>
#include <string>

#include "assembler/program.hh"
#include "func/arch_state.hh"
#include "func/executor.hh"
#include "mem/memory.hh"

namespace slip
{

/** Outcome of a functional run. */
struct FuncRunResult
{
    std::string output;       // everything PUTC/PUTN emitted
    uint64_t instCount = 0;   // retired dynamic instructions
    bool halted = false;      // false => hit the instruction limit
    Addr finalPc = 0;
};

/** Architecturally-correct interpreter for SSIR programs. */
class FuncSim
{
  public:
    /** Load a program: data image into memory, sp at the stack top. */
    explicit FuncSim(const Program &program);

    /**
     * Run until HALT or until `maxInsts` instructions retire.
     * @param maxInsts safety limit; 0 means the default (1 billion)
     */
    FuncRunResult run(uint64_t maxInsts = 0);

    /**
     * Execute exactly one instruction. Returns its ExecResult;
     * res.halted stays true once HALT has executed.
     */
    ExecResult step();

    /**
     * Run with a per-instruction observer (used by differential tests
     * to compare retirement streams instruction by instruction).
     */
    FuncRunResult
    runWithObserver(std::function<void(Addr pc, const StaticInst &,
                                       const ExecResult &)> observer,
                    uint64_t maxInsts = 0);

    const ArchState &state() const { return state_; }
    ArchState &state() { return state_; }
    Memory &memory() { return mem; }
    const std::string &output() const { return output_; }
    bool halted() const { return halted_; }

  private:
    const Program &program;
    Memory mem;
    DirectMemPort port;
    ArchState state_;
    std::string output_;
    bool halted_ = false;
    uint64_t retired = 0;
};

} // namespace slip

#endif // SLIPSTREAM_FUNC_FUNC_SIM_HH
