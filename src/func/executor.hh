/**
 * @file
 * The SSIR instruction executor — the single source of truth for
 * instruction semantics. The functional simulator, the superscalar
 * timing cores, and both slipstream streams all execute through this
 * function, so architectural behaviour cannot diverge between models.
 */

#ifndef SLIPSTREAM_FUNC_EXECUTOR_HH
#define SLIPSTREAM_FUNC_EXECUTOR_HH

#include <string>

#include "func/arch_state.hh"
#include "isa/isa.hh"
#include "isa/micro_op.hh"

namespace slip
{

/** Everything observable about one executed instruction. */
struct ExecResult
{
    Addr nextPc = 0;

    bool wroteReg = false;   // destination register was written
    RegIndex destReg = kNoReg;
    Word destValue = 0;

    bool isMem = false;      // load or store
    Addr memAddr = 0;
    unsigned memBytes = 0;
    Word storeValue = 0;     // value written (stores)
    Word loadedValue = 0;    // value read (loads; == destValue)

    bool isControl = false;
    bool taken = false;      // conditional branch direction / jumps: true
    Addr target = 0;         // control-flow destination if taken

    bool halted = false;
};

/**
 * Execute one instruction against `state`, updating registers, PC and
 * memory. PUTC/PUTN output is appended to `*output` when non-null.
 *
 * @param state   the context to execute in (its pc() must point at inst)
 * @param inst    the decoded instruction
 * @param output  program output sink, may be nullptr
 * @return        full record of what the instruction did
 */
ExecResult execute(ArchState &state, const StaticInst &inst,
                   std::string *output);

/**
 * Execute one predecoded micro-op. Bit-identical to execute() on the
 * corresponding StaticInst — the differential tests assert it — but
 * skips the per-execution decode work (opInfo table walks, destination
 * resolution, branch-target scaling). `state.pc()` must equal the
 * address the micro-op was predecoded at (its branch target is
 * absolute).
 */
ExecResult executeMicro(ArchState &state, const MicroOp &u,
                        std::string *output);

} // namespace slip

#endif // SLIPSTREAM_FUNC_EXECUTOR_HH
