#include "func/executor.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "func/exec_semantics.hh"

namespace slip
{

ExecResult
execute(ArchState &state, const StaticInst &inst, std::string *output)
{
    ExecResult res;
    const Addr pc = state.pc();
    res.nextPc = pc + kInstBytes;

    const Word a = state.readReg(inst.rs1);
    const Word b = state.readReg(inst.rs2);
    const Word imm = static_cast<Word>(inst.imm);

    const auto setDest = [&](Word v) {
        res.destReg = inst.destReg();
        res.destValue = v;
        if (res.destReg != kNoReg) {
            res.wroteReg = true;
            state.writeReg(res.destReg, v);
        }
    };

    const auto condBranch = [&](bool cond) {
        res.isControl = true;
        res.taken = cond;
        res.target = pc + static_cast<int64_t>(inst.imm) * kInstBytes;
        if (cond)
            res.nextPc = res.target;
    };

    switch (inst.op) {
      case Opcode::ADD: setDest(a + b); break;
      case Opcode::SUB: setDest(a - b); break;
      case Opcode::MUL: setDest(a * b); break;
      case Opcode::MULH: setDest(mulHigh(a, b)); break;
      case Opcode::DIV: setDest(divSigned(a, b)); break;
      case Opcode::DIVU: setDest(b == 0 ? ~0ull : a / b); break;
      case Opcode::REM: setDest(remSigned(a, b)); break;
      case Opcode::REMU: setDest(b == 0 ? a : a % b); break;
      case Opcode::AND: setDest(a & b); break;
      case Opcode::OR: setDest(a | b); break;
      case Opcode::XOR: setDest(a ^ b); break;
      case Opcode::SLL: setDest(a << (b & 63)); break;
      case Opcode::SRL: setDest(a >> (b & 63)); break;
      case Opcode::SRA:
        setDest(static_cast<Word>(static_cast<SWord>(a) >> (b & 63)));
        break;
      case Opcode::SLT:
        setDest(static_cast<SWord>(a) < static_cast<SWord>(b) ? 1 : 0);
        break;
      case Opcode::SLTU: setDest(a < b ? 1 : 0); break;

      case Opcode::ADDI: setDest(a + imm); break;
      case Opcode::ANDI: setDest(a & imm); break;
      case Opcode::ORI: setDest(a | imm); break;
      case Opcode::XORI: setDest(a ^ imm); break;
      case Opcode::SLLI: setDest(a << (imm & 63)); break;
      case Opcode::SRLI: setDest(a >> (imm & 63)); break;
      case Opcode::SRAI:
        setDest(static_cast<Word>(static_cast<SWord>(a) >> (imm & 63)));
        break;
      case Opcode::SLTI:
        setDest(static_cast<SWord>(a) < static_cast<SWord>(imm) ? 1 : 0);
        break;
      case Opcode::SLTIU: setDest(a < imm ? 1 : 0); break;
      case Opcode::LUI:
        setDest(static_cast<Word>(inst.imm) << 12);
        break;

      case Opcode::LB:
      case Opcode::LBU:
      case Opcode::LH:
      case Opcode::LHU:
      case Opcode::LW:
      case Opcode::LWU:
      case Opcode::LD: {
        res.isMem = true;
        res.memBytes = inst.memBytes();
        res.memAddr = a + imm;
        Word v = state.mem().read(res.memAddr, res.memBytes);
        if (opInfo(inst.op).loadSigned)
            v = static_cast<Word>(sext(v, res.memBytes * 8));
        res.loadedValue = v;
        setDest(v);
        break;
      }

      case Opcode::SB:
      case Opcode::SH:
      case Opcode::SW:
      case Opcode::SD: {
        res.isMem = true;
        res.memBytes = inst.memBytes();
        res.memAddr = a + imm;
        res.storeValue = b;
        state.mem().write(res.memAddr, res.memBytes, b);
        break;
      }

      case Opcode::BEQ: condBranch(a == b); break;
      case Opcode::BNE: condBranch(a != b); break;
      case Opcode::BLT:
        condBranch(static_cast<SWord>(a) < static_cast<SWord>(b));
        break;
      case Opcode::BGE:
        condBranch(static_cast<SWord>(a) >= static_cast<SWord>(b));
        break;
      case Opcode::BLTU: condBranch(a < b); break;
      case Opcode::BGEU: condBranch(a >= b); break;

      case Opcode::JAL:
        res.isControl = true;
        res.taken = true;
        res.target = pc + static_cast<int64_t>(inst.imm) * kInstBytes;
        setDest(pc + kInstBytes);
        res.nextPc = res.target;
        break;

      case Opcode::JALR:
        res.isControl = true;
        res.taken = true;
        res.target = a + imm;
        setDest(pc + kInstBytes);
        res.nextPc = res.target;
        break;

      case Opcode::PUTC:
        if (output)
            output->push_back(static_cast<char>(a & 0xff));
        break;

      case Opcode::PUTN:
        if (output) {
            *output += std::to_string(static_cast<SWord>(a));
            output->push_back('\n');
        }
        break;

      case Opcode::HALT:
        res.halted = true;
        res.nextPc = pc; // park
        break;

      case Opcode::NOP:
        break;

      case Opcode::NumOpcodes:
        SLIP_PANIC("executed NumOpcodes sentinel");
    }

    state.setPc(res.nextPc);
    return res;
}

ExecResult
executeMicro(ArchState &state, const MicroOp &u, std::string *output)
{
    ExecResult res;
    const Addr pc = state.pc();
    res.nextPc = pc + kInstBytes;

    const Word a = state.readReg(u.rs1);
    const Word b = state.readReg(u.rs2);
    const Word imm = static_cast<Word>(u.imm);

    const auto setDest = [&](Word v) {
        res.destReg = u.rd;
        res.destValue = v;
        if (u.rd != kNoReg) {
            res.wroteReg = true;
            state.writeReg(u.rd, v);
        }
    };

    const auto condBranch = [&](bool cond) {
        res.isControl = true;
        res.taken = cond;
        res.target = u.target;
        if (cond)
            res.nextPc = res.target;
    };

    switch (static_cast<Opcode>(u.handler)) {
      case Opcode::ADD: setDest(a + b); break;
      case Opcode::SUB: setDest(a - b); break;
      case Opcode::MUL: setDest(a * b); break;
      case Opcode::MULH: setDest(mulHigh(a, b)); break;
      case Opcode::DIV: setDest(divSigned(a, b)); break;
      case Opcode::DIVU: setDest(b == 0 ? ~0ull : a / b); break;
      case Opcode::REM: setDest(remSigned(a, b)); break;
      case Opcode::REMU: setDest(b == 0 ? a : a % b); break;
      case Opcode::AND: setDest(a & b); break;
      case Opcode::OR: setDest(a | b); break;
      case Opcode::XOR: setDest(a ^ b); break;
      case Opcode::SLL: setDest(a << (b & 63)); break;
      case Opcode::SRL: setDest(a >> (b & 63)); break;
      case Opcode::SRA:
        setDest(static_cast<Word>(static_cast<SWord>(a) >> (b & 63)));
        break;
      case Opcode::SLT:
        setDest(static_cast<SWord>(a) < static_cast<SWord>(b) ? 1 : 0);
        break;
      case Opcode::SLTU: setDest(a < b ? 1 : 0); break;

      case Opcode::ADDI: setDest(a + imm); break;
      case Opcode::ANDI: setDest(a & imm); break;
      case Opcode::ORI: setDest(a | imm); break;
      case Opcode::XORI: setDest(a ^ imm); break;
      // Shift immediates are pre-masked, LUI is pre-shifted.
      case Opcode::SLLI: setDest(a << imm); break;
      case Opcode::SRLI: setDest(a >> imm); break;
      case Opcode::SRAI:
        setDest(static_cast<Word>(static_cast<SWord>(a) >> imm));
        break;
      case Opcode::SLTI:
        setDest(static_cast<SWord>(a) < static_cast<SWord>(imm) ? 1 : 0);
        break;
      case Opcode::SLTIU: setDest(a < imm ? 1 : 0); break;
      case Opcode::LUI: setDest(imm); break;

      case Opcode::LB:
      case Opcode::LH:
      case Opcode::LW: {
        res.isMem = true;
        res.memBytes = u.memBytes;
        res.memAddr = a + imm;
        const Word v = static_cast<Word>(
            sext(state.mem().read(res.memAddr, u.memBytes),
                 u.memBytes * 8));
        res.loadedValue = v;
        setDest(v);
        break;
      }
      case Opcode::LBU:
      case Opcode::LHU:
      case Opcode::LWU:
      case Opcode::LD: {
        res.isMem = true;
        res.memBytes = u.memBytes;
        res.memAddr = a + imm;
        const Word v = state.mem().read(res.memAddr, u.memBytes);
        res.loadedValue = v;
        setDest(v);
        break;
      }

      case Opcode::SB:
      case Opcode::SH:
      case Opcode::SW:
      case Opcode::SD: {
        res.isMem = true;
        res.memBytes = u.memBytes;
        res.memAddr = a + imm;
        res.storeValue = b;
        state.mem().write(res.memAddr, u.memBytes, b);
        break;
      }

      case Opcode::BEQ: condBranch(a == b); break;
      case Opcode::BNE: condBranch(a != b); break;
      case Opcode::BLT:
        condBranch(static_cast<SWord>(a) < static_cast<SWord>(b));
        break;
      case Opcode::BGE:
        condBranch(static_cast<SWord>(a) >= static_cast<SWord>(b));
        break;
      case Opcode::BLTU: condBranch(a < b); break;
      case Opcode::BGEU: condBranch(a >= b); break;

      case Opcode::JAL:
        res.isControl = true;
        res.taken = true;
        res.target = u.target;
        setDest(pc + kInstBytes);
        res.nextPc = res.target;
        break;

      case Opcode::JALR:
        res.isControl = true;
        res.taken = true;
        res.target = a + imm;
        setDest(pc + kInstBytes);
        res.nextPc = res.target;
        break;

      case Opcode::PUTC:
        if (output)
            output->push_back(static_cast<char>(a & 0xff));
        break;

      case Opcode::PUTN:
        if (output) {
            *output += std::to_string(static_cast<SWord>(a));
            output->push_back('\n');
        }
        break;

      case Opcode::HALT:
        res.halted = true;
        res.nextPc = pc; // park
        break;

      case Opcode::NOP:
        break;

      case Opcode::NumOpcodes:
        SLIP_PANIC("executed NumOpcodes sentinel");
    }

    state.setPc(res.nextPc);
    return res;
}

} // namespace slip
