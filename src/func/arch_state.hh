/**
 * @file
 * Architectural state for one SSIR context: 64 registers, a PC, and a
 * port to a data memory.
 *
 * The memory port is an interface because the three users differ:
 * the functional simulator and the R-stream use a Memory directly,
 * while the A-stream reads/writes through the recovery controller's
 * overlay (its speculative, possibly corrupt context).
 */

#ifndef SLIPSTREAM_FUNC_ARCH_STATE_HH
#define SLIPSTREAM_FUNC_ARCH_STATE_HH

#include <array>

#include "common/types.hh"

namespace slip
{

class Memory;

/** Abstract data-memory port (byte-addressed, little-endian). */
class MemPort
{
  public:
    virtual ~MemPort() = default;
    virtual uint64_t read(Addr addr, unsigned bytes) = 0;
    virtual void write(Addr addr, unsigned bytes, uint64_t value) = 0;
};

/**
 * MemPort bound directly to a Memory image, with a one-entry page
 * pointer cache: consecutive accesses to the same data page skip the
 * hash lookup. The cache is validated against Memory::epoch() so
 * clear()/moves of the image can never leave a dangling pointer.
 */
class DirectMemPort : public MemPort
{
  public:
    explicit DirectMemPort(Memory &mem)
        : mem(mem)
    {}

    uint64_t read(Addr addr, unsigned bytes) override;
    void write(Addr addr, unsigned bytes, uint64_t value) override;

  private:
    Memory &mem;
    Addr cachedPage_ = ~Addr(0);
    uint8_t *cachedData_ = nullptr;
    uint64_t cachedEpoch_ = 0;
};

/** One context's register file and PC. */
class ArchState
{
  public:
    explicit ArchState(MemPort &mem)
        : mem_(&mem)
    {
        regs.fill(0);
    }

    /** Read a register; r0 always reads 0. */
    Word
    readReg(RegIndex r) const
    {
        return r == kZeroReg ? 0 : regs[r];
    }

    /** Write a register; writes to r0 are discarded. */
    void
    writeReg(RegIndex r, Word v)
    {
        if (r != kZeroReg)
            regs[r] = v;
    }

    Addr pc() const { return pc_; }
    void setPc(Addr pc) { pc_ = pc; }

    MemPort &mem() { return *mem_; }

    /** Swap the memory port (used when rebinding an overlay). */
    void setMemPort(MemPort &mem) { mem_ = &mem; }

    /** Copy registers (not memory) from another context. */
    void
    copyRegsFrom(const ArchState &other)
    {
        regs = other.regs;
    }

    bool
    regsEqual(const ArchState &other) const
    {
        return regs == other.regs;
    }

  private:
    std::array<Word, kNumRegs> regs;
    Addr pc_ = 0;
    MemPort *mem_;
};

} // namespace slip

#endif // SLIPSTREAM_FUNC_ARCH_STATE_HH
