#include "func/func_sim.hh"

#include "common/logging.hh"
#include "isa/regnames.hh"

namespace slip
{

namespace
{
constexpr uint64_t kDefaultMaxInsts = 1'000'000'000ull;
} // namespace

FuncSim::FuncSim(const Program &program)
    : program(program), port(mem), state_(port)
{
    program.loadInto(mem);
    state_.setPc(program.entry());
    state_.writeReg(reg::sp, layout::kStackTop);
}

ExecResult
FuncSim::execOne()
{
    // Ternary direct-init: the result materializes in place, no
    // default-construct-then-assign of the (large) ExecResult.
    const ExecResult res =
        dispatch_ == DispatchKind::Legacy
            ? execute(state_, program.fetch(state_.pc()), &output_)
            : executeMicro(state_, program.microAt(state_.pc()),
                           &output_);
    ++retired;
    if (res.halted)
        halted_ = true;
    return res;
}

ExecResult
FuncSim::step()
{
    return execOne();
}

FuncRunResult
FuncSim::finishResult() const
{
    FuncRunResult result;
    result.output = output_;
    result.instCount = retired;
    result.halted = halted_;
    result.finalPc = state_.pc();
    return result;
}

FuncRunResult
FuncSim::runEngine(uint64_t maxInsts,
                   const StoreObserver *storeObserver)
{
    while (!halted_ && retired < maxInsts) {
        const EngineExit e =
            runPredecoded(state_, mem, program, &output_,
                          maxInsts - retired, dispatch_, storeObserver);
        retired += e.retired;
        if (e.halted) {
            halted_ = true;
            break;
        }
        if (!e.leftText || retired >= maxInsts)
            break;
        // Control left the text image: retire the synthetic HALT the
        // legacy fetch path produces for a wild pc (parking there),
        // through the same per-instruction path legacy mode uses.
        execOne();
    }
    return finishResult();
}

FuncRunResult
FuncSim::run(uint64_t maxInsts)
{
    if (maxInsts == 0)
        maxInsts = kDefaultMaxInsts;

    if (dispatch_ != DispatchKind::Legacy)
        return runEngine(maxInsts, nullptr);

    // Legacy dispatch: the pre-engine per-instruction loop.
    while (!halted_ && retired < maxInsts)
        execOne();
    return finishResult();
}

FuncRunResult
FuncSim::runWithObserver(
    std::function<void(Addr, const StaticInst &, const ExecResult &)>
        observer,
    uint64_t maxInsts)
{
    if (!observer)
        return run(maxInsts);

    if (maxInsts == 0)
        maxInsts = kDefaultMaxInsts;

    while (!halted_ && retired < maxInsts) {
        const Addr pc = state_.pc();
        const StaticInst &inst = program.fetch(pc);
        const ExecResult res = execOne();
        observer(pc, inst, res);
    }
    return finishResult();
}

FuncRunResult
FuncSim::runWithStoreObserver(const StoreObserver &observer,
                              uint64_t maxInsts)
{
    if (maxInsts == 0)
        maxInsts = kDefaultMaxInsts;

    if (dispatch_ != DispatchKind::Legacy)
        return runEngine(maxInsts, &observer);

    while (!halted_ && retired < maxInsts) {
        const Addr pc = state_.pc();
        const StaticInst &inst = program.fetch(pc);
        const ExecResult res = execOne();
        if (inst.isStore())
            observer(pc, res.memAddr, res.memBytes, res.storeValue);
    }
    return finishResult();
}

} // namespace slip
