#include "func/func_sim.hh"

#include "common/logging.hh"
#include "isa/regnames.hh"

namespace slip
{

namespace
{
constexpr uint64_t kDefaultMaxInsts = 1'000'000'000ull;
} // namespace

FuncSim::FuncSim(const Program &program)
    : program(program), port(mem), state_(port)
{
    program.loadInto(mem);
    state_.setPc(program.entry());
    state_.writeReg(reg::sp, layout::kStackTop);
}

ExecResult
FuncSim::step()
{
    const StaticInst &inst = program.fetch(state_.pc());
    ExecResult res = execute(state_, inst, &output_);
    ++retired;
    if (res.halted)
        halted_ = true;
    return res;
}

FuncRunResult
FuncSim::run(uint64_t maxInsts)
{
    return runWithObserver(nullptr, maxInsts);
}

FuncRunResult
FuncSim::runWithObserver(
    std::function<void(Addr, const StaticInst &, const ExecResult &)>
        observer,
    uint64_t maxInsts)
{
    if (maxInsts == 0)
        maxInsts = kDefaultMaxInsts;

    while (!halted_ && retired < maxInsts) {
        const Addr pc = state_.pc();
        const StaticInst &inst = program.fetch(pc);
        const ExecResult res = execute(state_, inst, &output_);
        ++retired;
        if (observer)
            observer(pc, inst, res);
        if (res.halted)
            halted_ = true;
    }

    FuncRunResult result;
    result.output = output_;
    result.instCount = retired;
    result.halted = halted_;
    result.finalPc = state_.pc();
    return result;
}

} // namespace slip
