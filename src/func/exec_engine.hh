/**
 * @file
 * Predecoded block execution engine for the functional core.
 *
 * The legacy path re-walks the Opcode switch (plus opInfo table
 * lookups and destination resolution) for every retired instruction.
 * This engine instead runs straight over a Program's predecoded
 * MicroOp array with either
 *
 *  - computed-goto threaded dispatch (`&&label` table; GCC/Clang,
 *    selected at configure time), or
 *  - a portable dense-switch fallback,
 *
 * and keeps a one-entry data-page pointer cache so the common-case
 * load/store is a bounds check plus memcpy instead of a hash lookup
 * per byte. Architectural results are bit-identical to the legacy
 * executor across all three dispatch kinds — the differential tests
 * in tests/test_exec_engine.cc assert it, and the fuzz corpus replays
 * byte-identically whichever engine runs the reference leg.
 *
 * The engine runs until HALT, the instruction budget, or control
 * leaving the text image (a wild JALR / fall-through); the caller
 * finishes the wild-pc case through the legacy fetch path so the
 * park-on-synthetic-HALT semantics stay in one place.
 *
 * Runtime selection: $SLIPSTREAM_DISPATCH = threaded | switch |
 * legacy overrides the default (threaded when compiled in, else
 * switch) — the knob the perf methodology in EXPERIMENTS.md uses for
 * apples-to-apples regression numbers.
 */

#ifndef SLIPSTREAM_FUNC_EXEC_ENGINE_HH
#define SLIPSTREAM_FUNC_EXEC_ENGINE_HH

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.hh"

namespace slip
{

class ArchState;
class Memory;
class Program;

/** How the functional core dispatches instructions. */
enum class DispatchKind : uint8_t
{
    Threaded, // computed-goto over predecoded micro-ops
    Switch,   // dense switch over predecoded micro-ops (portable)
    Legacy,   // per-instruction decode switch (the pre-engine path)
};

/** Lower-case name for logs and bench labels. */
const char *dispatchName(DispatchKind kind);

/** True when the computed-goto engine was compiled in. */
bool threadedDispatchCompiled();

/**
 * Dispatch kind from $SLIPSTREAM_DISPATCH (threaded|switch|legacy).
 * Unset means the fastest compiled-in engine; asking for `threaded`
 * in a build without it warns and falls back to `switch`; an
 * unrecognized value throws FatalError listing the valid choices
 * (the strict mode-knob contract, common/env::envChoice). Re-read
 * per call.
 */
DispatchKind defaultDispatch();

/**
 * Observer for retired stores, the one per-instruction event the fuzz
 * oracle's reference leg needs. Invoked only from store handlers, so
 * the non-store hot path stays observer-free.
 */
using StoreObserver =
    std::function<void(Addr pc, Addr addr, unsigned bytes, Word value)>;

/** Why runPredecoded returned. */
struct EngineExit
{
    uint64_t retired = 0; // instructions retired by this call
    bool halted = false;  // HALT executed; state.pc() parks on it
    bool leftText = false; // control left text; state.pc() is wild
};

/**
 * Run `program` from state.pc() until HALT, `maxInsts` retires, or
 * control leaves the text image. Updates registers, pc and `mem` in
 * place; PUTC/PUTN append to `*output` when non-null. `kind` must be
 * Threaded or Switch (Threaded silently degrades to Switch when not
 * compiled in); the Legacy loop lives in FuncSim.
 */
EngineExit runPredecoded(ArchState &state, Memory &mem,
                         const Program &program, std::string *output,
                         uint64_t maxInsts, DispatchKind kind,
                         const StoreObserver *storeObserver = nullptr);

} // namespace slip

#endif // SLIPSTREAM_FUNC_EXEC_ENGINE_HH
