/**
 * detect_report: re-render the detection-backend shootout table from
 * a fault-campaign JSON report, offline — no simulation.
 *
 *   detect_report                          # results/detect_shootout.json
 *   detect_report path/to/report.json
 *   detect_report -o results/table.txt    # also write the table file
 *
 * Reads the JSON array bench/detect_shootout (or any campaign runner)
 * wrote; every campaign object carrying a "detect_backend" key
 * becomes one table row, in file order.
 *
 * Exit codes: 0 = table printed, 1 = report missing, truncated,
 * from a foreign schema version, or holding no backend campaigns —
 * each with a one-line diagnosis on stderr — 2 = usage error.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "harness/shootout.hh"

int
main(int argc, char **argv)
{
    using namespace slip;

    std::string reportPath = "results/detect_shootout.json";
    std::string tablePath;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            std::cout << "usage: detect_report [report.json]"
                         " [-o table.txt]\n";
            return 0;
        } else if (arg == "-o") {
            if (i + 1 >= argc) {
                std::cerr << "detect_report: -o needs a path\n";
                return 2;
            }
            tablePath = argv[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "detect_report: unknown option '" << arg
                      << "'\n";
            return 2;
        } else {
            reportPath = arg;
        }
    }

    std::ifstream in(reportPath);
    if (!in) {
        std::cerr << "detect_report: cannot read '" << reportPath
                  << "' (run bench/detect_shootout first?)\n";
        return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    std::string why;
    if (!validateShootoutReport(buf.str(), why)) {
        std::cerr << "detect_report: '" << reportPath << "': " << why
                  << "\n";
        return 1;
    }

    const std::vector<ShootoutRow> rows =
        shootoutRowsFromReport(buf.str());
    if (rows.empty()) {
        std::cerr << "detect_report: no detection-backend campaigns "
                     "in '"
                  << reportPath << "'\n";
        return 1;
    }

    std::cout << renderShootoutTable(rows);
    if (!tablePath.empty()) {
        writeShootoutTable(rows, tablePath);
        std::cout << "table written to " << tablePath << "\n";
    }
    return 0;
}
