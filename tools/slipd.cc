/**
 * slipd: the persistent simulation-as-a-service daemon. Listens on a
 * Unix (and optionally TCP) socket, accepts trial batches from slipc
 * clients, shards them across the crash-isolated worker pool, streams
 * JSONL results, and caches every result content-addressed on disk so
 * repeated batches — and batches re-submitted after a restart —
 * answer without re-simulating.
 *
 *   slipd --socket /tmp/slipd.sock --cache results/serve_cache
 *   slipd --socket /tmp/slipd.sock --tcp 7411 --workers 8
 *
 * SIGTERM/SIGINT drain gracefully: in-flight batches finish and
 * stream their BatchDone, new batches are rejected, then the daemon
 * prints its lifetime stats and exits 0. A client's DrainRequest
 * frame does the same remotely.
 *
 * Exit codes: 0 = clean shutdown (drained), 2 = usage/startup error.
 */

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <unistd.h>

#include "common/logging.hh"
#include "serve/server.hh"

namespace
{

using namespace slip;

int g_signalPipe[2] = {-1, -1};

extern "C" void
onTermSignal(int)
{
    // Async-signal-safe: one byte wakes the main loop.
    const ssize_t n = ::write(g_signalPipe[1], "x", 1);
    (void)n;
}

void
usage(std::ostream &os)
{
    os << "usage: slipd [options]\n"
          "  --socket PATH    unix-domain listen socket "
          "(default /tmp/slipd.sock)\n"
          "  --tcp PORT       also listen on 127.0.0.1:PORT "
          "(1 = ephemeral)\n"
          "  --cache DIR      content-addressed result cache "
          "(default results/serve_cache;\n"
          "                   'none' disables)\n"
          "  --cache-max N    cache entry cap "
          "(default $SLIPSTREAM_CACHE_MAX, else 65536)\n"
          "  --workers N      trial workers per batch "
          "(default $SLIPSTREAM_WORKERS)\n"
          "  --isolation M    trial sandboxing: none | fork "
          "(default $SLIPSTREAM_ISOLATION)\n"
          "  --wave N         trials dispatched per wave — the "
          "cancel/drain\n"
          "                   granularity (default 4x workers)\n"
          "  --name NAME      server name in the handshake "
          "(default slipd)\n"
          "  -h, --help\n";
}

bool
parseU64(const std::string &s, uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    serve::ServerOptions opts;
    opts.unixPath = "/tmp/slipd.sock";
    opts.cacheDir = "results/serve_cache";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "slipd: " << flag << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        uint64_t n = 0;
        if (arg == "-h" || arg == "--help") {
            usage(std::cout);
            return 0;
        } else if (arg == "--socket") {
            opts.unixPath = value("--socket");
        } else if (arg == "--tcp") {
            if (!parseU64(value("--tcp"), n) || n > 65535) {
                std::cerr << "slipd: bad --tcp\n";
                return 2;
            }
            opts.tcpPort = uint16_t(n);
        } else if (arg == "--cache") {
            opts.cacheDir = value("--cache");
            if (opts.cacheDir == "none")
                opts.cacheDir.clear();
        } else if (arg == "--cache-max") {
            if (!parseU64(value("--cache-max"), n) || n == 0) {
                std::cerr << "slipd: bad --cache-max\n";
                return 2;
            }
            opts.cacheMax = n;
        } else if (arg == "--workers") {
            if (!parseU64(value("--workers"), n) || n == 0) {
                std::cerr << "slipd: bad --workers\n";
                return 2;
            }
            opts.workers = unsigned(n);
        } else if (arg == "--wave") {
            if (!parseU64(value("--wave"), n) || n == 0) {
                std::cerr << "slipd: bad --wave\n";
                return 2;
            }
            opts.waveSize = unsigned(n);
        } else if (arg == "--isolation") {
            const std::string v = value("--isolation");
            if (!parseIsolationMode(v, opts.isolation)) {
                std::cerr << "slipd: bad --isolation '" << v
                          << "' (want none|fork)\n";
                return 2;
            }
        } else if (arg == "--name") {
            opts.name = value("--name");
        } else {
            std::cerr << "slipd: unknown option '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        }
    }

    if (::pipe(g_signalPipe) != 0) {
        std::cerr << "slipd: pipe: " << std::strerror(errno) << "\n";
        return 2;
    }
    struct sigaction sa = {};
    sa.sa_handler = onTermSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    serve::Server server(opts);
    std::string err;
    if (!server.start(err)) {
        std::cerr << "slipd: " << err << "\n";
        return 2;
    }
    std::cout << "slipd: listening on " << opts.unixPath;
    if (server.tcpPort())
        std::cout << " and 127.0.0.1:" << server.tcpPort();
    std::cout << " (cache: "
              << (server.cache().enabled() ? server.cache().root()
                                           : std::string("disabled"))
              << ", isolation: " << isolationModeName(opts.isolation)
              << ")\n"
              << std::flush;

    // Block until a termination signal lands.
    char byte;
    while (::read(g_signalPipe[0], &byte, 1) < 0 && errno == EINTR) {
    }

    std::cout << "slipd: signal received — draining\n" << std::flush;
    server.beginDrain();
    server.waitIdle();
    server.stop();

    const serve::ServeStats s = server.statsSnapshot();
    std::cout << "slipd: drained. connections=" << s.connections
              << " batches=" << s.batches << " trials_run="
              << s.trialsRun << " trials_cached=" << s.trialsCached
              << " trials_revoked=" << s.trialsRevoked
              << " cache_hits=" << s.cacheHits << " cache_misses="
              << s.cacheMisses << " cache_stores=" << s.cacheStores
              << " cache_evictions=" << s.cacheEvictions << "\n";
    return 0;
}
