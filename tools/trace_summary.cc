/**
 * trace_summary: offline digest of one or more *.trace.json files
 * written by the obs subsystem (Chrome trace-event format).
 *
 *   trace_summary results/trace/fig6_m88ksim_cmp.trace.json [...]
 *   trace_summary --top 20 results/trace/<trial>.trace.json ...
 *
 * For each file: per-category event counts, counter ranges, the
 * longest Begin/End spans, and the ring-overflow footer (a non-zero
 * dropped-oldest count is surfaced loudly — overflow is never
 * silent). The parser leans on the writer's one-event-per-line
 * output; it is not a general JSON reader.
 */

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

namespace
{

/** Extract "key": "value" from one event line; false if absent. */
bool
fieldString(const std::string &line, const char *key, std::string &out)
{
    const std::string needle = std::string("\"") + key + "\": \"";
    const size_t at = line.find(needle);
    if (at == std::string::npos)
        return false;
    const size_t start = at + needle.size();
    const size_t end = line.find('"', start);
    if (end == std::string::npos)
        return false;
    out = line.substr(start, end - start);
    return true;
}

/** Extract "key": <integer> from one event line; false if absent. */
bool
fieldU64(const std::string &line, const char *key, uint64_t &out)
{
    const std::string needle = std::string("\"") + key + "\": ";
    const size_t at = line.find(needle);
    if (at == std::string::npos)
        return false;
    const char *p = line.c_str() + at + needle.size();
    char *end = nullptr;
    out = std::strtoull(p, &end, 10);
    return end != p;
}

struct Span
{
    std::string category;
    std::string name;
    uint64_t start = 0;
    uint64_t length = 0;
};

struct CounterStats
{
    uint64_t samples = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    uint64_t last = 0;
};

int
summarize(const std::string &path, size_t topN)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "trace_summary: cannot open '" << path << "'\n";
        return 1;
    }

    std::map<std::string, std::map<char, uint64_t>> byCategory;
    std::map<std::string, CounterStats> counters;
    // Open Begin events per (category, name): spans on one track
    // close in order, so a vector-as-stack per key suffices.
    std::map<std::string, std::vector<uint64_t>> open;
    std::vector<Span> spans;
    uint64_t droppedOldest = 0;
    bool sawFooter = false;
    uint64_t events = 0;

    std::string line;
    while (std::getline(in, line)) {
        std::string name, cat, ph;
        if (!fieldString(line, "ph", ph) || ph == "M")
            continue;
        if (!fieldString(line, "name", name) ||
            !fieldString(line, "cat", cat)) {
            continue;
        }
        uint64_t ts = 0;
        fieldU64(line, "ts", ts);

        if (name == "trace_footer") {
            sawFooter = true;
            fieldU64(line, "dropped_oldest", droppedOldest);
            continue;
        }
        ++events;
        ++byCategory[cat][ph.empty() ? '?' : ph[0]];

        if (ph == "C") {
            uint64_t value = 0;
            fieldU64(line, "value", value);
            CounterStats &c = counters[cat + "/" + name];
            if (c.samples == 0 || value < c.min)
                c.min = value;
            if (c.samples == 0 || value > c.max)
                c.max = value;
            c.last = value;
            ++c.samples;
        } else if (ph == "B") {
            open[cat + "/" + name].push_back(ts);
        } else if (ph == "E") {
            std::vector<uint64_t> &stack = open[cat + "/" + name];
            if (!stack.empty()) {
                const uint64_t start = stack.back();
                stack.pop_back();
                spans.push_back(
                    {cat, name, start, ts >= start ? ts - start : 0});
            }
        }
    }

    std::cout << "== " << path << " ==\n"
              << "events: " << events << "\n";

    std::cout << "per category (phase: count):\n";
    for (const auto &[cat, phases] : byCategory) {
        std::cout << "  " << cat << ":";
        for (const auto &[ph, n] : phases)
            std::cout << " " << ph << ":" << n;
        std::cout << "\n";
    }

    if (!counters.empty()) {
        std::cout << "counters (min/max/last over samples):\n";
        for (const auto &[key, c] : counters) {
            std::cout << "  " << key << ": " << c.min << "/" << c.max
                      << "/" << c.last << " over " << c.samples
                      << "\n";
        }
    }

    uint64_t unclosed = 0;
    for (const auto &[key, stack] : open)
        unclosed += stack.size();
    if (!spans.empty() || unclosed) {
        std::stable_sort(spans.begin(), spans.end(),
                         [](const Span &a, const Span &b) {
                             return a.length > b.length;
                         });
        std::cout << "longest spans (cycles):\n";
        for (size_t i = 0; i < spans.size() && i < topN; ++i) {
            const Span &s = spans[i];
            std::cout << "  " << s.category << "/" << s.name << " @"
                      << s.start << " +" << s.length << "\n";
        }
        if (unclosed) {
            std::cout << "  (" << unclosed
                      << " span(s) never closed — e.g. an injected "
                         "fault that was never detected)\n";
        }
    }

    if (!sawFooter) {
        std::cout << "WARNING: no trace_footer event — truncated "
                     "file?\n";
    } else if (droppedOldest) {
        std::cout << "WARNING: ring overflow dropped " << droppedOldest
                  << " oldest event(s); raise SLIPSTREAM_TRACE_BUFFER "
                     "or narrow --trace categories\n";
    } else {
        std::cout << "ring overflow: none\n";
    }
    std::cout << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    size_t topN = 10;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--top" && i + 1 < argc) {
            topN = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--help" || arg == "-h" ||
                   arg.rfind("--", 0) == 0) {
            std::cerr << "usage: " << argv[0]
                      << " [--top N] <trace.json> [...]\n";
            return arg == "--help" || arg == "-h" ? 0 : 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        std::cerr << "usage: " << argv[0]
                  << " [--top N] <trace.json> [...]\n";
        return 2;
    }
    int rc = 0;
    for (const std::string &path : paths)
        rc |= summarize(path, topN);
    return rc;
}
