/**
 * slip_campaign: run one fault-injection campaign with explicit
 * control over the isolation layer — the operational front end for
 * the crash-isolated trial harness (and the binary CI's
 * crash-containment smoke job drives).
 *
 *   slip_campaign --isolation fork --trials 8
 *   slip_campaign --isolation fork --workloads compress,li --resume
 *   slip_campaign --isolation fork --demo-crash 3 --demo-exit 5
 *
 * The --demo-* flags make specific trial indices misbehave inside the
 * worker (SIGSEGV / _exit(3) / spin forever) without touching
 * simulator code: under `--isolation fork` the supervisor must
 * contain each one as a classified `crashed`/`timed_out` journal line
 * while every other trial completes. Under `--isolation none` a demo
 * crash takes down this process — which is exactly the failure mode
 * the fork sandbox exists to remove.
 *
 * Exit codes: 0 = campaign completed and no non-demo trial was lost,
 * 1 = a trial that should have been healthy crashed or timed out,
 * 2 = usage error, 130 = interrupted (SIGINT), 143 = terminated
 * (SIGTERM, what supervisors and CI runners send) — either way,
 * completed trials are already journaled and fsync'd, so rerunning
 * with --resume finishes the campaign without repeating them.
 */

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/logging.hh"
#include "harness/fault_campaign.hh"
#include "harness/table.hh"
#include "harness/worker_pool.hh"

namespace
{

using namespace slip;

/**
 * Graceful SIGINT/SIGTERM: every completed trial is already journaled
 * (one write() per line, fsync'd by default), so there is nothing to
 * flush — the job is to die deliberately: tell the operator how to
 * resume, use the shell-convention exit status (128 + signal: 130 for
 * SIGINT, 143 for the SIGTERM a supervisor or CI runner sends), and
 * never from a forked worker's inherited handler (the supervisor
 * triages worker deaths itself, so workers exit silently).
 * Async-signal-safe only: write() + _exit().
 */
pid_t g_mainPid = 0;

extern "C" void
onTermSignal(int sig)
{
    if (getpid() == g_mainPid) {
        static const char msg[] =
            "\nslip_campaign: interrupted — completed trials are "
            "journaled;\nrerun with --resume to finish without "
            "repeating them\n";
        const ssize_t n =
            ::write(STDERR_FILENO, msg, sizeof(msg) - 1);
        (void)n;
    }
    _exit(128 + sig);
}

void
usage(std::ostream &os)
{
    os << "usage: slip_campaign [options]\n"
          "  --isolation M    trial sandboxing: none | fork\n"
          "                   (default $SLIPSTREAM_ISOLATION, else "
          "none)\n"
          "  --detect B       detection backend: slipstream | replay "
          "| checker\n"
          "                   (default $SLIPSTREAM_DETECT, else "
          "slipstream)\n"
          "  --policy P       A-stream policy: ir | runahead | "
          "filtered | reliability\n"
          "                   (default $SLIPSTREAM_ASTREAM_POLICY, "
          "else ir)\n"
          "  --workers N      worker processes/threads\n"
          "                   (default $SLIPSTREAM_WORKERS, else "
          "$SLIPSTREAM_JOBS)\n"
          "  --trials N       trials per workload      (default 8)\n"
          "  --seed N         campaign seed            (default "
          "20260806)\n"
          "  --workloads A,B  workload subset          (default all "
          "eight)\n"
          "  --size S         workload size: test | small | default\n"
          "  --name NAME      campaign name            (default "
          "slip_campaign)\n"
          "  --resume         skip trials already journaled\n"
          "  --journal PATH   trial journal            (default "
          "$SLIPSTREAM_FAULT_JOURNAL)\n"
          "  --report PATH    write the JSON report here (default: "
          "none)\n"
          "  --quarantine DIR poisoned-trial bundles   (default "
          "results/quarantine)\n"
          "  --demo-crash K   trial K raise(SIGSEGV)s in the worker "
          "(repeatable)\n"
          "  --demo-exit K    trial K _exit(3)s in the worker "
          "(repeatable)\n"
          "  --demo-spin K    trial K spins until the deadline "
          "(repeatable;\n"
          "                   set SLIPSTREAM_TRIAL_TIMEOUT_MS)\n"
          "  -h, --help\n";
}

bool
parseU64(const std::string &s, uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

void
printCampaign(const FaultCampaignResult &result)
{
    Table table({"benchmark", "trials", "faults", "det+rec", "hung+rec",
                 "silent-benign", "silent-corrupt", "det-but-corrupt",
                 "det-unrepaired", "no-victim", "hung", "timed-out",
                 "crashed", "degraded"});
    for (const auto &[name, t] : result.perWorkload) {
        table.addRow(
            {name, Table::count(t.trials), Table::count(t.faultsInjected),
             Table::count(t.outcomes(TrialOutcome::DetectedRecovered)),
             Table::count(t.outcomes(TrialOutcome::HungRecovered)),
             Table::count(t.outcomes(TrialOutcome::SilentBenign)),
             Table::count(t.outcomes(TrialOutcome::SilentCorrupt)),
             Table::count(t.outcomes(TrialOutcome::DetectedButCorrupt)),
             Table::count(t.outcomes(TrialOutcome::DetectedUnrepaired)),
             Table::count(t.outcomes(TrialOutcome::NoVictim)),
             Table::count(t.outcomes(TrialOutcome::Hung)),
             Table::count(t.outcomes(TrialOutcome::TimedOut)),
             Table::count(t.outcomes(TrialOutcome::Crashed)),
             Table::count(t.degradedRuns)});
    }
    table.print(std::cout);

    const CampaignTally &t = result.total;
    std::cout << "totals: " << t.faultsPlanned << " faults planned, "
              << t.faultsInjected << " injected, " << t.faultsDetected
              << " detected\n";
    if (!t.crashBySignal.empty()) {
        std::cout << "worker deaths:";
        for (const auto &[how, n] : t.crashBySignal)
            std::cout << " " << how << "=" << n;
        std::cout << "\n";
    }
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    FaultCampaignConfig cfg;
    cfg.name = "slip_campaign";
    cfg.trialsPerWorkload = 8;

    std::string reportPath;
    std::set<uint64_t> demoCrash, demoExit, demoSpin;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "slip_campaign: " << flag
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        uint64_t n = 0;
        if (arg == "-h" || arg == "--help") {
            usage(std::cout);
            return 0;
        } else if (arg == "--isolation") {
            const std::string v = value("--isolation");
            if (!parseIsolationMode(v, cfg.isolation)) {
                std::cerr << "slip_campaign: bad --isolation '" << v
                          << "' (want none|fork)\n";
                return 2;
            }
        } else if (arg == "--detect") {
            const std::string v = value("--detect");
            if (!parseDetectBackend(v, cfg.params.detect.kind)) {
                std::cerr << "slip_campaign: bad --detect '" << v
                          << "' (want slipstream|replay|checker)\n";
                return 2;
            }
        } else if (arg == "--policy") {
            const std::string v = value("--policy");
            if (!parseAStreamPolicy(v, cfg.params.aPolicy.kind)) {
                std::cerr << "slip_campaign: bad --policy '" << v
                          << "' (want ir|runahead|filtered|"
                             "reliability)\n";
                return 2;
            }
        } else if (arg == "--workers") {
            if (!parseU64(value("--workers"), n) || n == 0) {
                std::cerr << "slip_campaign: bad --workers\n";
                return 2;
            }
            cfg.workers = static_cast<unsigned>(n);
        } else if (arg == "--trials") {
            if (!parseU64(value("--trials"), n) || n == 0) {
                std::cerr << "slip_campaign: bad --trials\n";
                return 2;
            }
            cfg.trialsPerWorkload = static_cast<unsigned>(n);
        } else if (arg == "--seed") {
            if (!parseU64(value("--seed"), n)) {
                std::cerr << "slip_campaign: bad --seed\n";
                return 2;
            }
            cfg.seed = n;
        } else if (arg == "--workloads") {
            cfg.workloads = splitCsv(value("--workloads"));
            if (cfg.workloads.empty()) {
                std::cerr << "slip_campaign: bad --workloads\n";
                return 2;
            }
        } else if (arg == "--size") {
            const std::string v = value("--size");
            if (v == "test") {
                cfg.size = WorkloadSize::Test;
            } else if (v == "small") {
                cfg.size = WorkloadSize::Small;
            } else if (v == "default" || v == "full") {
                cfg.size = WorkloadSize::Default;
            } else {
                std::cerr << "slip_campaign: bad --size '" << v
                          << "' (want test|small|default)\n";
                return 2;
            }
        } else if (arg == "--name") {
            cfg.name = value("--name");
        } else if (arg == "--resume") {
            cfg.resume = true;
        } else if (arg == "--journal") {
            cfg.journalPath = value("--journal");
        } else if (arg == "--report") {
            reportPath = value("--report");
        } else if (arg == "--quarantine") {
            cfg.quarantineDir = value("--quarantine");
        } else if (arg == "--demo-crash") {
            if (!parseU64(value("--demo-crash"), n)) {
                std::cerr << "slip_campaign: bad --demo-crash\n";
                return 2;
            }
            demoCrash.insert(n);
        } else if (arg == "--demo-exit") {
            if (!parseU64(value("--demo-exit"), n)) {
                std::cerr << "slip_campaign: bad --demo-exit\n";
                return 2;
            }
            demoExit.insert(n);
        } else if (arg == "--demo-spin") {
            if (!parseU64(value("--demo-spin"), n)) {
                std::cerr << "slip_campaign: bad --demo-spin\n";
                return 2;
            }
            demoSpin.insert(n);
        } else {
            std::cerr << "slip_campaign: unknown option '" << arg
                      << "'\n";
            usage(std::cerr);
            return 2;
        }
    }

    if (!demoCrash.empty() || !demoExit.empty() || !demoSpin.empty()) {
        if (cfg.isolation == IsolationMode::None) {
            std::cerr << "slip_campaign: note: --demo-* under "
                         "--isolation none will kill this process "
                         "(that's the unsandboxed failure mode)\n";
        }
        cfg.trialHook = [demoCrash, demoExit, demoSpin](size_t trial) {
            if (demoCrash.count(trial))
                raise(SIGSEGV);
            if (demoExit.count(trial))
                _exit(3);
            if (demoSpin.count(trial)) {
                volatile uint64_t sink = 0;
                for (;;)
                    sink = sink + 1;
            }
        };
    }

    std::cout << "=== slip_campaign: " << cfg.name << " ===\n"
              << "isolation: " << isolationModeName(cfg.isolation)
              << ", detect: "
              << detectBackendName(cfg.params.detect.kind)
              << ", policy: "
              << aStreamPolicyName(cfg.params.aPolicy.kind)
              << ", trials/workload: " << cfg.trialsPerWorkload
              << ", seed: " << cfg.seed << "\n\n";
    setLogQuiet(false);

    g_mainPid = getpid();
    struct sigaction sa = {};
    sa.sa_handler = onTermSignal;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);

    FaultCampaignResult result;
    try {
        result = runFaultCampaign(cfg);
    } catch (const std::exception &e) {
        std::cerr << "slip_campaign: " << e.what() << "\n";
        return 2;
    }
    printCampaign(result);

    if (!reportPath.empty())
        writeFaultReport({campaignJson(cfg, result)}, reportPath);

    // Containment check: only trials we deliberately broke may end as
    // crashed/timed_out. Anything else lost means the isolation layer
    // leaked collateral damage.
    const auto isDemo = [&](size_t i) {
        return demoCrash.count(i) || demoExit.count(i) ||
               demoSpin.count(i);
    };
    uint64_t lostHealthy = 0;
    uint64_t healthy = 0;
    for (size_t i = 0; i < result.trials.size(); ++i) {
        if (isDemo(i))
            continue;
        ++healthy;
        const TrialOutcome o = result.trials[i].outcome;
        if (o == TrialOutcome::Crashed || o == TrialOutcome::TimedOut) {
            std::cerr << "slip_campaign: healthy trial " << i
                      << " lost (" << trialOutcomeName(o) << ": "
                      << result.trials[i].error << ")\n";
            ++lostHealthy;
        }
    }
    if (lostHealthy) {
        std::cerr << "slip_campaign: " << lostHealthy << " of "
                  << healthy << " healthy trial(s) lost\n";
        return 1;
    }
    std::cout << "slip_campaign: all " << healthy
              << " healthy trials completed\n";
    return 0;
}
