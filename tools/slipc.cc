/**
 * slipc: streaming JSONL client for the slipd campaign server.
 *
 *   slipc --connect unix:/tmp/slipd.sock campaign --trials 8 \
 *         --workloads compress,li --seed 7
 *   slipc --connect unix:/tmp/slipd.sock bench --workloads compress
 *   slipc --connect unix:/tmp/slipd.sock fuzz --seeds 0:64
 *   slipc --connect unix:/tmp/slipd.sock stats
 *   slipc --connect unix:/tmp/slipd.sock drain
 *
 * Result lines stream to stdout. They arrive in completion order but
 * are printed sorted by trial index at batch end (the canonical
 * journal order), so `slipc campaign ... > out.jsonl` compares
 * byte-for-byte against a local slip_campaign journal for the same
 * config. `--no-sort` streams lines as they arrive instead. The
 * batch summary goes to stderr.
 *
 * Exit codes: 0 = batch ok, 1 = transport/handshake error, 2 = usage
 * error, 3 = batch cancelled, 4 = batch rejected (server draining),
 * 5 = server-side batch error.
 */

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "serve/client.hh"

namespace
{

using namespace slip;

void
usage(std::ostream &os)
{
    os << "usage: slipc [--connect ADDR] COMMAND [options]\n"
          "  ADDR: unix:PATH (default unix:/tmp/slipd.sock) or "
          "HOST:PORT\n"
          "commands:\n"
          "  campaign   fault-injection campaign batch\n"
          "    --name NAME --workloads A,B --size S --trials N\n"
          "    --seed N --min-faults N --max-faults N --reliable\n"
          "    --detect slipstream|replay|checker\n"
          "    --policy ir|runahead|filtered|reliability\n"
          "  bench      fault-free performance sweep\n"
          "    --name NAME --workloads A,B --size S --trials N\n"
          "  fuzz       differential-fuzz seed window\n"
          "    --name NAME --seeds BEGIN:END\n"
          "  stats      print server lifetime counters\n"
          "  drain      ask the server to drain and exit\n"
          "common batch options:\n"
          "    --batch-id N     client-chosen id (default 1)\n"
          "    --no-sort        stream results unsorted\n"
          "    --cancel-after N cancel the batch after N results\n"
          "  -h, --help\n";
}

bool
parseU64(const std::string &s, uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string address = "unix:/tmp/slipd.sock";
    std::string command;
    serve::BatchRequest req;
    req.id = 1;
    bool sortResults = true;
    uint64_t cancelAfter = 0; // 0 = never

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "slipc: " << flag << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        uint64_t n = 0;
        if (arg == "-h" || arg == "--help") {
            usage(std::cout);
            return 0;
        } else if (arg == "--connect") {
            address = value("--connect");
        } else if (arg == "campaign" || arg == "bench" ||
                   arg == "fuzz" || arg == "stats" ||
                   arg == "drain") {
            if (!command.empty()) {
                std::cerr << "slipc: one command at a time\n";
                return 2;
            }
            command = arg;
            if (arg == "campaign")
                req.kind = serve::BatchKind::Campaign;
            else if (arg == "bench")
                req.kind = serve::BatchKind::Bench;
            else if (arg == "fuzz")
                req.kind = serve::BatchKind::Fuzz;
        } else if (arg == "--name") {
            req.name = value("--name");
        } else if (arg == "--workloads") {
            req.workloads = splitCsv(value("--workloads"));
        } else if (arg == "--size") {
            const std::string v = value("--size");
            if (v == "test") {
                req.size = WorkloadSize::Test;
            } else if (v == "small") {
                req.size = WorkloadSize::Small;
            } else if (v == "default" || v == "full") {
                req.size = WorkloadSize::Default;
            } else {
                std::cerr << "slipc: bad --size '" << v
                          << "' (want test|small|default)\n";
                return 2;
            }
        } else if (arg == "--trials") {
            if (!parseU64(value("--trials"), n) || n == 0) {
                std::cerr << "slipc: bad --trials\n";
                return 2;
            }
            req.trialsPerWorkload = unsigned(n);
        } else if (arg == "--seed") {
            if (!parseU64(value("--seed"), n)) {
                std::cerr << "slipc: bad --seed\n";
                return 2;
            }
            req.seed = n;
        } else if (arg == "--min-faults") {
            if (!parseU64(value("--min-faults"), n) || n == 0) {
                std::cerr << "slipc: bad --min-faults\n";
                return 2;
            }
            req.minFaultsPerTrial = unsigned(n);
        } else if (arg == "--max-faults") {
            if (!parseU64(value("--max-faults"), n) || n == 0) {
                std::cerr << "slipc: bad --max-faults\n";
                return 2;
            }
            req.maxFaultsPerTrial = unsigned(n);
        } else if (arg == "--reliable") {
            req.reliableMode = true;
        } else if (arg == "--detect") {
            const std::string v = value("--detect");
            if (!parseDetectBackend(v, req.detect.kind)) {
                std::cerr << "slipc: bad --detect '" << v
                          << "' (want slipstream|replay|checker)\n";
                return 2;
            }
        } else if (arg == "--policy") {
            const std::string v = value("--policy");
            if (!parseAStreamPolicy(v, req.policy.kind)) {
                std::cerr << "slipc: bad --policy '" << v
                          << "' (want ir|runahead|filtered|"
                             "reliability)\n";
                return 2;
            }
        } else if (arg == "--seeds") {
            const std::string v = value("--seeds");
            const size_t colon = v.find(':');
            uint64_t b = 0, e = 0;
            if (colon == std::string::npos ||
                !parseU64(v.substr(0, colon), b) ||
                !parseU64(v.substr(colon + 1), e) || e <= b) {
                std::cerr << "slipc: bad --seeds '" << v
                          << "' (want BEGIN:END, END > BEGIN)\n";
                return 2;
            }
            req.seedBegin = b;
            req.seedEnd = e;
        } else if (arg == "--batch-id") {
            if (!parseU64(value("--batch-id"), n)) {
                std::cerr << "slipc: bad --batch-id\n";
                return 2;
            }
            req.id = n;
        } else if (arg == "--no-sort") {
            sortResults = false;
        } else if (arg == "--cancel-after") {
            if (!parseU64(value("--cancel-after"), n) || n == 0) {
                std::cerr << "slipc: bad --cancel-after\n";
                return 2;
            }
            cancelAfter = n;
        } else {
            std::cerr << "slipc: unknown option '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        }
    }
    if (command.empty()) {
        std::cerr << "slipc: no command\n";
        usage(std::cerr);
        return 2;
    }
    if (command == "fuzz" && req.seedEnd <= req.seedBegin) {
        std::cerr << "slipc: fuzz needs --seeds BEGIN:END\n";
        return 2;
    }

    serve::Client client;
    std::string err;
    if (!client.connect(address, err) ||
        !client.handshake("slipc", err)) {
        std::cerr << "slipc: " << err << "\n";
        return 1;
    }

    if (command == "stats") {
        serve::ServeStats s;
        if (!client.queryStats(s, err)) {
            std::cerr << "slipc: " << err << "\n";
            return 1;
        }
        std::cout << "connections=" << s.connections << " batches="
                  << s.batches << " trials_run=" << s.trialsRun
                  << " trials_cached=" << s.trialsCached
                  << " trials_revoked=" << s.trialsRevoked
                  << " cache_hits=" << s.cacheHits << " cache_misses="
                  << s.cacheMisses << " cache_stores="
                  << s.cacheStores << " cache_evictions="
                  << s.cacheEvictions << " draining="
                  << (s.draining ? 1 : 0) << "\n";
        return 0;
    }
    if (command == "drain") {
        if (!client.requestDrain(err)) {
            std::cerr << "slipc: " << err << "\n";
            return 1;
        }
        std::cerr << "slipc: server draining\n";
        return 0;
    }

    std::vector<std::pair<uint64_t, std::string>> sorted;
    uint64_t received = 0;
    serve::BatchDoneMsg done;
    const bool finished = client.submitBatch(
        req,
        [&](const serve::TrialResultMsg &m) {
            ++received;
            if (sortResults)
                sorted.emplace_back(m.index, m.line);
            else
                std::cout << m.line << "\n";
            return !(cancelAfter && received >= cancelAfter);
        },
        done, err);
    if (!finished) {
        std::cerr << "slipc: " << err << "\n";
        return 1;
    }

    if (sortResults) {
        std::sort(sorted.begin(), sorted.end());
        for (const auto &[index, line] : sorted)
            std::cout << line << "\n";
    }
    std::cout << std::flush;

    std::cerr << "slipc: batch " << done.batchId << " "
              << serve::batchStatusName(done.status) << ": "
              << done.completed << " completed, " << done.revoked
              << " revoked, cache " << done.cacheHits << " hit / "
              << done.cacheMisses << " miss";
    if (!done.error.empty())
        std::cerr << " (" << done.error << ")";
    std::cerr << "\n";

    switch (done.status) {
      case serve::BatchStatus::Ok:
        return 0;
      case serve::BatchStatus::Cancelled:
        return 3;
      case serve::BatchStatus::Rejected:
        return 4;
      case serve::BatchStatus::Error:
        return 5;
    }
    return 1;
}
