/**
 * bench_diff: normalize, compare, and gate benchmark results.
 *
 *   bench_diff --extract <gbench.json> [--perf <bench_perf.json>]
 *              [-o <out.json>]
 *       Normalize a google-benchmark JSON file (plus, optionally, the
 *       wall-clock records bench_timing writes) into the committed
 *       BENCH_slipstream.json schema, deriving dispatch speedup
 *       ratios (threaded/legacy etc.), which are machine-portable and
 *       therefore what CI gates on.
 *
 *   bench_diff <baseline.json> <new.json> [--filter <substr>]
 *       Print baseline vs new with % deltas for every entry present
 *       on both sides.
 *
 *   bench_diff <baseline.json> <new.json> --check --tolerance <pct>
 *              [--filter <substr>]
 *       Exit nonzero if any matched entry regressed by more than
 *       <pct> percent (direction taken from the entry's "better"
 *       field). Entries only on one side are reported, never fatal.
 *
 * Self-contained: ships its own minimal JSON reader so the tool has
 * no dependency beyond the standard library.
 */

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace
{

// ---- minimal JSON value + recursive-descent reader ----

struct Json
{
    enum Kind { Null, Bool, Num, Str, Arr, Obj } kind = Null;
    bool b = false;
    double num = 0;
    std::string str;
    std::vector<Json> arr;
    std::vector<std::pair<std::string, Json>> obj; // order-preserving

    const Json *
    get(const std::string &key) const
    {
        for (const auto &[k, v] : obj)
            if (k == key)
                return &v;
        return nullptr;
    }
};

class Parser
{
  public:
    explicit Parser(std::string text)
        : s(std::move(text))
    {}

    Json
    parse()
    {
        Json v = value();
        ws();
        if (pos != s.size())
            fail("trailing content");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why)
    {
        throw std::runtime_error("JSON parse error at offset " +
                                 std::to_string(pos) + ": " + why);
    }

    void
    ws()
    {
        while (pos < s.size() && std::isspace(uint8_t(s[pos])))
            ++pos;
    }

    char
    peek()
    {
        if (pos >= s.size())
            fail("unexpected end");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (pos >= s.size() || s[pos] != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    Json
    value()
    {
        ws();
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': {
            Json v;
            v.kind = Json::Str;
            v.str = string();
            return v;
          }
          case 't':
          case 'f': {
            Json v;
            v.kind = Json::Bool;
            v.b = s.compare(pos, 4, "true") == 0;
            pos += v.b ? 4 : 5;
            return v;
          }
          case 'n': {
            pos += 4;
            return Json{};
          }
          default: return number();
        }
    }

    Json
    object()
    {
        Json v;
        v.kind = Json::Obj;
        expect('{');
        ws();
        if (peek() == '}') {
            ++pos;
            return v;
        }
        for (;;) {
            ws();
            std::string key = string();
            ws();
            expect(':');
            v.obj.emplace_back(std::move(key), value());
            ws();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Json
    array()
    {
        Json v;
        v.kind = Json::Arr;
        expect('[');
        ws();
        if (peek() == ']') {
            ++pos;
            return v;
        }
        for (;;) {
            v.arr.push_back(value());
            ws();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (pos < s.size() && s[pos] != '"') {
            char c = s[pos++];
            if (c == '\\' && pos < s.size()) {
                const char e = s[pos++];
                switch (e) {
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'u': pos += 4; out += '?'; break;
                  default: out += e;
                }
            } else {
                out += c;
            }
        }
        expect('"');
        return out;
    }

    Json
    number()
    {
        const size_t start = pos;
        while (pos < s.size() &&
               (std::isdigit(uint8_t(s[pos])) || s[pos] == '-' ||
                s[pos] == '+' || s[pos] == '.' || s[pos] == 'e' ||
                s[pos] == 'E'))
            ++pos;
        if (pos == start)
            fail("expected number");
        Json v;
        v.kind = Json::Num;
        v.num = std::stod(s.substr(start, pos - start));
        return v;
    }

    std::string s;
    size_t pos = 0;
};

Json
parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "bench_diff: cannot open " << path << "\n";
        std::exit(2);
    }
    std::stringstream buf;
    buf << in.rdbuf();
    return Parser(buf.str()).parse();
}

// ---- normalized schema ----

struct Entry
{
    std::string bench;
    double value = 0;
    std::string unit;
    bool higherIsBetter = true;
};

double
counterOf(const Json &bench, const char *name)
{
    const Json *c = bench.get(name);
    return c && c->kind == Json::Num ? c->num : 0.0;
}

/** Normalize one google-benchmark output file into entries. */
std::vector<Entry>
extractGbench(const Json &root)
{
    std::vector<Entry> out;
    const Json *benches = root.get("benchmarks");
    if (!benches || benches->kind != Json::Arr) {
        std::cerr << "bench_diff: no 'benchmarks' array in input\n";
        std::exit(2);
    }
    for (const Json &b : benches->arr) {
        const Json *name = b.get("name");
        const Json *rt = b.get("real_time");
        if (!name || !rt)
            continue;
        // With --benchmark_repetitions, keep only the _mean rows
        // (under their base name); without, keep the plain rows.
        std::string n = name->str;
        const Json *runType = b.get("run_type");
        if (runType && runType->str == "aggregate") {
            const std::string suffix = "_mean";
            if (n.size() < suffix.size() ||
                n.compare(n.size() - suffix.size(), suffix.size(),
                          suffix) != 0)
                continue;
            n.resize(n.size() - suffix.size());
        }
        out.push_back({n + ":ns", rt->num, "ns", false});
        if (const double r = counterOf(b, "insts/s"))
            out.push_back({n + ":insts/s", r, "insts/s", true});
        if (const double r = counterOf(b, "bytes_per_second"))
            out.push_back({n + ":bytes/s", r, "bytes/s", true});
    }

    // Derived dispatch speedups: ratios of same-machine numbers, so
    // they transfer across machines and are what the CI gate checks.
    const auto rateOf = [&](const std::string &bench) -> double {
        for (const Entry &e : out)
            if (e.bench == bench)
                return e.value;
        return 0.0;
    };
    const double legacy =
        rateOf("BM_FunctionalSimDispatch/legacy:insts/s");
    for (const char *variant : {"switch_", "threaded"}) {
        const double v =
            rateOf(std::string("BM_FunctionalSimDispatch/") + variant +
                   ":insts/s");
        if (legacy > 0 && v > 0)
            out.push_back({std::string("speedup/") + variant +
                               "_vs_legacy",
                           v / legacy, "ratio", true});
    }
    return out;
}

/** Fold in the wall-clock records bench_timing writes. */
void
extractPerf(const Json &root, std::vector<Entry> &out)
{
    if (root.kind != Json::Arr)
        return;
    for (const Json &rec : root.arr) {
        const Json *artifact = rec.get("artifact");
        const Json *rate = rec.get("cycles_per_sec");
        if (artifact && rate && rate->num > 0)
            out.push_back({"timing/" + artifact->str + ":cycles/s",
                           rate->num, "cycles/s", true});
    }
}

std::vector<Entry>
loadNormalized(const std::string &path)
{
    const Json root = parseFile(path);
    const Json *schema = root.get("schema");
    if (!schema || schema->str != "slipstream-bench-v1") {
        std::cerr << "bench_diff: " << path
                  << " is not a slipstream-bench-v1 file (run "
                     "--extract first)\n";
        std::exit(2);
    }
    std::vector<Entry> out;
    const Json *entries = root.get("entries");
    if (entries)
        for (const Json &e : entries->arr) {
            const Json *bench = e.get("bench");
            const Json *value = e.get("value");
            const Json *unit = e.get("unit");
            const Json *better = e.get("better");
            if (!bench || !value)
                continue;
            out.push_back({bench->str, value->num,
                           unit ? unit->str : "",
                           !better || better->str == "higher"});
        }
    return out;
}

void
writeNormalized(const std::vector<Entry> &entries, std::ostream &os)
{
    os << "{\n  \"schema\": \"slipstream-bench-v1\",\n  \"entries\": [";
    for (size_t i = 0; i < entries.size(); ++i) {
        const Entry &e = entries[i];
        os << (i ? "," : "") << "\n    {\"bench\": \"" << e.bench
           << "\", \"value\": " << std::setprecision(10) << e.value
           << ", \"unit\": \"" << e.unit << "\", \"better\": \""
           << (e.higherIsBetter ? "higher" : "lower") << "\"}";
    }
    os << "\n  ]\n}\n";
}

// ---- diff / check ----

int
diff(const std::vector<Entry> &base, const std::vector<Entry> &next,
     const std::string &filter, bool check, double tolerancePct)
{
    std::map<std::string, Entry> baseBy;
    for (const Entry &e : base)
        baseBy[e.bench] = e;

    std::cout << std::left << std::setw(44) << "benchmark"
              << std::right << std::setw(14) << "baseline"
              << std::setw(14) << "new" << std::setw(10) << "delta"
              << "  verdict\n";

    int regressions = 0;
    for (const Entry &e : next) {
        if (!filter.empty() &&
            e.bench.find(filter) == std::string::npos)
            continue;
        auto it = baseBy.find(e.bench);
        if (it == baseBy.end()) {
            std::cout << std::left << std::setw(44) << e.bench
                      << "  (new entry, no baseline)\n";
            continue;
        }
        const Entry &b = it->second;
        const double deltaPct =
            b.value != 0 ? (e.value - b.value) / b.value * 100.0 : 0.0;
        const double gain =
            b.higherIsBetter ? deltaPct : -deltaPct;
        const bool regressed = gain < -tolerancePct;

        std::ostringstream d;
        d << std::showpos << std::fixed << std::setprecision(1)
          << deltaPct << "%";
        std::cout << std::left << std::setw(44) << e.bench
                  << std::right << std::setw(14)
                  << std::setprecision(6) << b.value << std::setw(14)
                  << e.value << std::setw(10) << d.str() << "  "
                  << (regressed        ? "REGRESSED"
                      : gain > tolerancePct ? "improved"
                                            : "ok")
                  << "\n";
        if (regressed)
            ++regressions;
    }

    if (check && regressions) {
        std::cerr << "bench_diff: " << regressions
                  << " entr" << (regressions == 1 ? "y" : "ies")
                  << " regressed beyond " << tolerancePct << "%\n";
        return 1;
    }
    return 0;
}

void
usage()
{
    std::cerr
        << "usage:\n"
           "  bench_diff --extract <gbench.json> [--perf <perf.json>]"
           " [-o <out.json>]\n"
           "  bench_diff <baseline.json> <new.json> [--check]"
           " [--tolerance <pct>] [--filter <substr>]\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> pos;
    std::string extractPath, perfPath, outPath, filter;
    bool check = false;
    double tolerance = 15.0;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (a == "--extract")
            extractPath = next();
        else if (a == "--perf")
            perfPath = next();
        else if (a == "-o" || a == "--out")
            outPath = next();
        else if (a == "--filter")
            filter = next();
        else if (a == "--check")
            check = true;
        else if (a == "--tolerance")
            tolerance = std::stod(next());
        else if (a == "--help" || a == "-h")
            usage();
        else
            pos.push_back(a);
    }

    try {
        if (!extractPath.empty()) {
            if (!pos.empty())
                usage();
            std::vector<Entry> entries =
                extractGbench(parseFile(extractPath));
            if (!perfPath.empty())
                extractPerf(parseFile(perfPath), entries);
            if (outPath.empty()) {
                writeNormalized(entries, std::cout);
            } else {
                std::ofstream out(outPath, std::ios::trunc);
                if (!out) {
                    std::cerr << "bench_diff: cannot write "
                              << outPath << "\n";
                    return 2;
                }
                writeNormalized(entries, out);
            }
            return 0;
        }

        if (pos.size() != 2)
            usage();
        return diff(loadNormalized(pos[0]), loadNormalized(pos[1]),
                    filter, check, tolerance);
    } catch (const std::exception &e) {
        std::cerr << "bench_diff: " << e.what() << "\n";
        return 2;
    }
}
