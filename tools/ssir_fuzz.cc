/**
 * ssir_fuzz: differential fuzzing for the SSIR simulation stack.
 *
 * Generates seeded random SSIR programs and runs each through the
 * three-way co-simulation oracle (functional reference, slipstream
 * dual-core, forced degraded R-only), with runtime invariant checkers
 * enabled. Divergent programs are greedily minimized and written out
 * as self-contained repro bundles.
 *
 *   ssir_fuzz --seeds 0:500                    # a seed window
 *   ssir_fuzz --seeds 0:100000 --budget-ms 60000
 *   ssir_fuzz --replay fuzz-repros/seed_7/program.s
 *   ssir_fuzz --seeds 0:1 --demo-fault         # guaranteed divergence
 *
 * Exit codes: 0 = no divergences, 1 = divergences found (bundles
 * written), 2 = usage or infrastructure error.
 */

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "fuzz/fuzzer.hh"
#include "fuzz/oracle.hh"

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: ssir_fuzz [options]\n"
          "  --seeds A:B     fuzz seeds in [A, B)          "
          "(default 0:100)\n"
          "  --jobs N        worker threads                "
          "(default $SLIPSTREAM_JOBS or cores)\n"
          "  --isolation M   none | fork: sandbox each seed in a "
          "worker process\n"
          "                  (default $SLIPSTREAM_ISOLATION; fork "
          "survives crashing seeds)\n"
          "  --budget-ms N   wall-clock budget; stop starting new "
          "seeds once exceeded\n"
          "  --max-cycles N  per-leg cycle budget          "
          "(default 20000000)\n"
          "  --policy P      A-stream policy for the slipstream legs: "
          "ir | runahead |\n"
          "                  filtered | reliability       "
          "(default ir)\n"
          "  --out DIR       repro bundle directory        "
          "(default fuzz-repros)\n"
          "  --no-bundles    report divergences without writing "
          "bundles\n"
          "  --no-minimize   keep divergent programs unminimized\n"
          "  --demo-fault    arm an undetectable memory-cell fault "
          "in the slipstream leg\n"
          "  --replay FILE   run the oracle on one assembly file, "
          "no generation\n"
          "  --dump DIR      write generated programs for the seed "
          "window as DIR/seed_<N>.s, no oracle\n"
          "  --verbose-logs  keep model warn/inform output\n"
          "  -h, --help\n";
}

bool
parseU64(const std::string &s, uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

bool
parseSeeds(const std::string &s, uint64_t &begin, uint64_t &end)
{
    const size_t colon = s.find(':');
    if (colon == std::string::npos)
        return false;
    return parseU64(s.substr(0, colon), begin) &&
           parseU64(s.substr(colon + 1), end) && begin <= end;
}

int
replay(const std::string &path, const slip::fuzz::OracleOptions &oracle)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "ssir_fuzz: cannot read " << path << "\n";
        return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    try {
        const slip::Program program = slip::assemble(buf.str());
        const slip::fuzz::OracleVerdict v =
            slip::fuzz::runOracle(program, oracle);
        if (v.diverged) {
            std::cout << "DIVERGED: " << path << "\n"
                      << v.report << "\n";
            return 1;
        }
        std::cout << "clean: " << path << "\n";
        return 0;
    } catch (const std::exception &e) {
        std::cerr << "ssir_fuzz: replay failed: " << e.what() << "\n";
        return 2;
    }
}

int
dumpCorpus(const std::string &dir, const slip::fuzz::FuzzOptions &opt)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        std::cerr << "ssir_fuzz: cannot create " << dir << ": "
                  << ec.message() << "\n";
        return 2;
    }
    for (uint64_t seed = opt.seedBegin; seed < opt.seedEnd; ++seed) {
        const slip::fuzz::GeneratedProgram gp =
            slip::fuzz::generate(seed, opt.gen);
        const fs::path path =
            fs::path(dir) / ("seed_" + std::to_string(seed) + ".s");
        std::ofstream out(path);
        if (!out) {
            std::cerr << "ssir_fuzz: cannot write " << path.string()
                      << "\n";
            return 2;
        }
        out << "# ssir_fuzz generated program, seed " << seed << "\n"
            << "# generator: " << opt.gen.summary() << "\n"
            << "# regenerate: ssir_fuzz --seeds " << seed << ":"
            << seed + 1 << " --dump <dir>\n"
            << gp.render();
    }
    std::cout << "ssir_fuzz: wrote "
              << (opt.seedEnd - opt.seedBegin) << " programs to "
              << dir << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    slip::fuzz::FuzzOptions opt;
    std::string replayPath;
    std::string dumpDir;
    bool quietLogs = true;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "ssir_fuzz: " << flag
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        uint64_t n = 0;
        if (arg == "-h" || arg == "--help") {
            usage(std::cout);
            return 0;
        } else if (arg == "--seeds") {
            const std::string v = value("--seeds");
            if (!parseSeeds(v, opt.seedBegin, opt.seedEnd)) {
                std::cerr << "ssir_fuzz: bad --seeds '" << v
                          << "' (want A:B with A <= B)\n";
                return 2;
            }
        } else if (arg == "--jobs") {
            if (!parseU64(value("--jobs"), n) || n == 0) {
                std::cerr << "ssir_fuzz: bad --jobs\n";
                return 2;
            }
            opt.jobs = static_cast<unsigned>(n);
        } else if (arg == "--isolation") {
            const std::string v = value("--isolation");
            if (!slip::parseIsolationMode(v, opt.isolation)) {
                std::cerr << "ssir_fuzz: bad --isolation '" << v
                          << "' (want none|fork)\n";
                return 2;
            }
        } else if (arg == "--budget-ms") {
            if (!parseU64(value("--budget-ms"), n)) {
                std::cerr << "ssir_fuzz: bad --budget-ms\n";
                return 2;
            }
            opt.budgetMs = n;
        } else if (arg == "--max-cycles") {
            if (!parseU64(value("--max-cycles"), n) || n == 0) {
                std::cerr << "ssir_fuzz: bad --max-cycles\n";
                return 2;
            }
            opt.oracle.maxCycles = n;
        } else if (arg == "--policy") {
            const std::string v = value("--policy");
            if (!slip::parseAStreamPolicy(v,
                                          opt.oracle.params.aPolicy.kind)) {
                std::cerr << "ssir_fuzz: bad --policy '" << v
                          << "' (want ir|runahead|filtered|"
                             "reliability)\n";
                return 2;
            }
        } else if (arg == "--out") {
            opt.bundleDir = value("--out");
        } else if (arg == "--no-bundles") {
            opt.bundleDir.clear();
        } else if (arg == "--no-minimize") {
            opt.minimizeDivergences = false;
        } else if (arg == "--demo-fault") {
            // A bit flip in the authoritative memory image: invisible
            // to slipstream redundancy (paper leaves main memory to
            // ECC), so the oracle MUST report it — the acceptance
            // check that the whole detection pipeline works.
            slip::FaultPlan plan;
            plan.target = slip::FaultTarget::MemoryCell;
            plan.dynIndex = 40;
            plan.bit = 13;
            opt.oracle.faults.push_back(plan);
        } else if (arg == "--replay") {
            replayPath = value("--replay");
        } else if (arg == "--dump") {
            dumpDir = value("--dump");
        } else if (arg == "--verbose-logs") {
            quietLogs = false;
        } else {
            std::cerr << "ssir_fuzz: unknown option '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        }
    }

    // The degraded leg's forced transition warns on every seed;
    // that's campaign noise, not information.
    slip::setLogQuiet(quietLogs);

    if (!dumpDir.empty())
        return dumpCorpus(dumpDir, opt);

    if (!replayPath.empty())
        return replay(replayPath, opt.oracle);

    uint64_t done = 0;
    const uint64_t total = opt.seedEnd - opt.seedBegin;
    opt.onSeed = [&done, total](uint64_t seed, bool diverged) {
        ++done;
        if (diverged)
            std::cout << "seed " << seed << ": DIVERGED\n";
        else if (done % 100 == 0)
            std::cout << "  ..." << done << "/" << total
                      << " seeds clean\n";
    };

    try {
        const slip::fuzz::FuzzSummary summary = runFuzz(opt);
        std::cout << "ssir_fuzz: " << summary.seedsRun << " seeds, "
                  << summary.divergences << " divergences, "
                  << summary.errors << " errors";
        if (summary.workerCrashes)
            std::cout << ", " << summary.workerCrashes
                      << " worker crashes";
        std::cout << (summary.budgetExhausted ? " (budget exhausted)"
                                              : "")
                  << "\n";
        for (const slip::fuzz::FuzzCase &c : summary.findings) {
            std::cout << "---- seed " << c.seed << " ----\n";
            if (!c.report.empty())
                std::cout << c.report << "\n";
            if (!c.error.empty())
                std::cout << "error: " << c.error << "\n";
            if (!c.bundlePath.empty())
                std::cout << "bundle: " << c.bundlePath << "\n";
        }
        if (summary.errors != 0 && summary.divergences == 0)
            return 2;
        return summary.divergences == 0 ? 0 : 1;
    } catch (const std::exception &e) {
        std::cerr << "ssir_fuzz: " << e.what() << "\n";
        return 2;
    }
}
